"""Abstract syntax tree for MiniF.

Nodes are plain dataclasses.  Source positions are carried for diagnostics but
excluded from equality so that structural comparisons (e.g. the pretty-print /
re-parse round-trip property) ignore them.

Expression nodes are side-effect free by construction: procedure calls appear
only in the statement forms :class:`CallStmt` and :class:`CallAssign`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Union

from repro.errors import SourcePos

#: Concrete scalar values manipulated by MiniF programs.
Value = Union[int, float]


def _pos_field() -> Optional[SourcePos]:
    return None


# ----------------------------------------------------------------------
# Expressions.
# ----------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expression nodes."""


@dataclass
class IntLit(Expr):
    """An integer literal."""

    value: int
    pos: Optional[SourcePos] = field(default_factory=_pos_field, compare=False)


@dataclass
class FloatLit(Expr):
    """A floating-point literal."""

    value: float
    pos: Optional[SourcePos] = field(default_factory=_pos_field, compare=False)


@dataclass
class Var(Expr):
    """A reference to a local, formal, or global variable."""

    name: str
    pos: Optional[SourcePos] = field(default_factory=_pos_field, compare=False)


@dataclass
class Unary(Expr):
    """A unary operation; ``op`` is ``-`` or ``not``."""

    op: str
    operand: Expr
    pos: Optional[SourcePos] = field(default_factory=_pos_field, compare=False)


@dataclass
class Binary(Expr):
    """A binary operation over arithmetic, comparison, or logical operators."""

    op: str
    left: Expr
    right: Expr
    pos: Optional[SourcePos] = field(default_factory=_pos_field, compare=False)


@dataclass
class Index(Expr):
    """An array element read, ``name[index]``.

    Arrays are the paper's acknowledged blind spot ("We only propagate
    scalar variables"): every analysis treats an element read as BOTTOM and
    an element store as a may-definition of the whole array.
    """

    name: str
    index: Expr
    pos: Optional[SourcePos] = field(default_factory=_pos_field, compare=False)


# ----------------------------------------------------------------------
# Statements.
# ----------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statement nodes."""


@dataclass
class Block(Stmt):
    """A ``{ ... }`` sequence of statements."""

    stmts: List[Stmt]
    pos: Optional[SourcePos] = field(default_factory=_pos_field, compare=False)


@dataclass
class Assign(Stmt):
    """``target = expr;`` — the expression contains no calls."""

    target: str
    expr: Expr
    pos: Optional[SourcePos] = field(default_factory=_pos_field, compare=False)


@dataclass
class AssignIndex(Stmt):
    """``target[index] = expr;`` — an array element store."""

    target: str
    index: Expr
    expr: Expr
    pos: Optional[SourcePos] = field(default_factory=_pos_field, compare=False)


@dataclass
class CallStmt(Stmt):
    """``call p(args);`` — a procedure call for its effects."""

    callee: str
    args: List[Expr]
    pos: Optional[SourcePos] = field(default_factory=_pos_field, compare=False)


@dataclass
class CallAssign(Stmt):
    """``target = f(args);`` — a call whose return value is captured."""

    target: str
    callee: str
    args: List[Expr]
    pos: Optional[SourcePos] = field(default_factory=_pos_field, compare=False)


@dataclass
class If(Stmt):
    """``if (cond) then_block [else else_block]``."""

    cond: Expr
    then_block: Block
    else_block: Optional[Block] = None
    pos: Optional[SourcePos] = field(default_factory=_pos_field, compare=False)


@dataclass
class While(Stmt):
    """``while (cond) body``."""

    cond: Expr
    body: Block
    pos: Optional[SourcePos] = field(default_factory=_pos_field, compare=False)


@dataclass
class Return(Stmt):
    """``return [expr];``."""

    expr: Optional[Expr] = None
    pos: Optional[SourcePos] = field(default_factory=_pos_field, compare=False)


@dataclass
class Print(Stmt):
    """``print(expr);`` — the observable output of a program."""

    expr: Expr
    pos: Optional[SourcePos] = field(default_factory=_pos_field, compare=False)


# ----------------------------------------------------------------------
# Top-level declarations.
# ----------------------------------------------------------------------


@dataclass
class GlobalInit:
    """One ``g = literal;`` entry of an ``init`` block (Fortran BLOCK DATA)."""

    name: str
    value: Value
    pos: Optional[SourcePos] = field(default_factory=_pos_field, compare=False)


@dataclass
class Procedure:
    """A procedure declaration with by-reference formal parameters."""

    name: str
    formals: List[str]
    body: Block
    pos: Optional[SourcePos] = field(default_factory=_pos_field, compare=False)


@dataclass
class Program:
    """A whole MiniF program.

    ``global_names`` preserves declaration order; ``inits`` preserves the
    order of ``init`` block entries (later entries win, as in the validator).
    """

    global_names: List[str]
    inits: List[GlobalInit]
    procedures: List[Procedure]

    def procedure(self, name: str) -> Procedure:
        """Return the procedure named ``name`` (raises ``KeyError`` if absent)."""
        for proc in self.procedures:
            if proc.name == name:
                return proc
        raise KeyError(name)

    def procedure_map(self) -> Dict[str, Procedure]:
        """Return a name -> procedure mapping."""
        return {proc.name: proc for proc in self.procedures}

    def global_set(self) -> Set[str]:
        """Return the set of declared global variable names."""
        return set(self.global_names)

    def initial_globals(self) -> Dict[str, Value]:
        """Return the effective initial constant for each initialized global."""
        values: Dict[str, Value] = {}
        for entry in self.inits:
            values[entry.name] = entry.value
        return values


# ----------------------------------------------------------------------
# Traversal helpers.
# ----------------------------------------------------------------------


def walk_statements(stmt: Stmt) -> Iterator[Stmt]:
    """Yield ``stmt`` and every statement nested inside it, pre-order."""
    yield stmt
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            yield from walk_statements(child)
    elif isinstance(stmt, If):
        yield from walk_statements(stmt.then_block)
        if stmt.else_block is not None:
            yield from walk_statements(stmt.else_block)
    elif isinstance(stmt, While):
        yield from walk_statements(stmt.body)


def walk_expressions(stmt: Stmt) -> Iterator[Expr]:
    """Yield every expression appearing directly in ``stmt`` (not nested stmts)."""
    if isinstance(stmt, Assign):
        yield stmt.expr
    elif isinstance(stmt, AssignIndex):
        yield stmt.index
        yield stmt.expr
    elif isinstance(stmt, (CallStmt, CallAssign)):
        yield from stmt.args
    elif isinstance(stmt, If):
        yield stmt.cond
    elif isinstance(stmt, While):
        yield stmt.cond
    elif isinstance(stmt, Return):
        if stmt.expr is not None:
            yield stmt.expr
    elif isinstance(stmt, Print):
        yield stmt.expr


def expr_variables(expr: Expr) -> Set[str]:
    """Return the set of variable names read by ``expr``."""
    names: Set[str] = set()
    _collect_variables(expr, names)
    return names


def _collect_variables(expr: Expr, names: Set[str]) -> None:
    if isinstance(expr, Var):
        names.add(expr.name)
    elif isinstance(expr, Unary):
        _collect_variables(expr.operand, names)
    elif isinstance(expr, Binary):
        _collect_variables(expr.left, names)
        _collect_variables(expr.right, names)
    elif isinstance(expr, Index):
        names.add(expr.name)
        _collect_variables(expr.index, names)


def literal_value(expr: Expr) -> Optional[Value]:
    """Return the constant value of a (possibly sign-wrapped) literal, else None.

    Recognizes ``IntLit``, ``FloatLit``, and a unary minus applied to either,
    which is how negative immediate arguments appear in source.
    """
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, FloatLit):
        return expr.value
    if isinstance(expr, Unary) and expr.op == "-":
        inner = literal_value(expr.operand)
        if inner is not None:
            return -inner
    return None
