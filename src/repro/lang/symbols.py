"""Per-procedure symbol classification.

Every analysis needs to know, for a given procedure, which names are formals,
which are globals, and which are locals, plus the *immediately* assigned and
referenced variable sets (the IMOD/IREF of the MOD/REF literature, restricted
to variables visible here).  This module computes those once per procedure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from repro.lang import ast


@dataclass(frozen=True)
class CallSite:
    """A syntactic call site inside a procedure.

    ``index`` numbers call sites within their procedure in pre-order; the pair
    ``(caller, index)`` identifies a call site program-wide.
    """

    caller: str
    index: int
    callee: str
    stmt: ast.Stmt = field(compare=False, repr=False)

    @property
    def args(self) -> List[ast.Expr]:
        """The argument expressions of this call."""
        return self.stmt.args  # type: ignore[union-attr]

    @property
    def is_value_call(self) -> bool:
        """True for ``x = f(...)``, false for ``call f(...);``."""
        return isinstance(self.stmt, ast.CallAssign)

    def __str__(self) -> str:
        return f"{self.caller}#{self.index}->{self.callee}"


@dataclass
class ProcedureSymbols:
    """Symbol information for one procedure."""

    name: str
    formals: List[str]
    globals_in_scope: FrozenSet[str]
    locals: FrozenSet[str]
    assigned: FrozenSet[str]           # variables with a direct assignment
    referenced: FrozenSet[str]         # variables read by some expression
    call_sites: List[CallSite]
    has_value_return: bool
    #: Names used with subscript syntax (arrays) / in scalar contexts.
    array_names: FrozenSet[str] = frozenset()
    scalar_names: FrozenSet[str] = frozenset()

    @property
    def formal_set(self) -> FrozenSet[str]:
        return frozenset(self.formals)

    def kind_of(self, name: str) -> str:
        """Classify ``name`` as 'formal', 'global', or 'local'."""
        if name in self.formal_set:
            return "formal"
        if name in self.globals_in_scope:
            return "global"
        return "local"

    @property
    def imod_visible(self) -> FrozenSet[str]:
        """Directly assigned variables visible to callers (globals + formals)."""
        return frozenset(
            name for name in self.assigned if self.kind_of(name) != "local"
        )

    @property
    def iref_visible(self) -> FrozenSet[str]:
        """Directly referenced variables visible to callers (globals + formals)."""
        return frozenset(
            name for name in self.referenced if self.kind_of(name) != "local"
        )


def collect_symbols(program: ast.Program) -> Dict[str, ProcedureSymbols]:
    """Compute :class:`ProcedureSymbols` for every procedure in ``program``."""
    globals_in_scope = frozenset(program.global_names)
    result: Dict[str, ProcedureSymbols] = {}
    for proc in program.procedures:
        result[proc.name] = _collect_one(proc, globals_in_scope)
    return result


def _collect_one(
    proc: ast.Procedure, globals_in_scope: FrozenSet[str]
) -> ProcedureSymbols:
    assigned: Set[str] = set()
    referenced: Set[str] = set()
    array_names: Set[str] = set()
    scalar_names: Set[str] = set()
    call_sites: List[CallSite] = []
    has_value_return = False
    for stmt in ast.walk_statements(proc.body):
        if isinstance(stmt, ast.Assign):
            assigned.add(stmt.target)
            scalar_names.add(stmt.target)
        elif isinstance(stmt, ast.AssignIndex):
            assigned.add(stmt.target)
            array_names.add(stmt.target)
        elif isinstance(stmt, ast.CallAssign):
            assigned.add(stmt.target)
            scalar_names.add(stmt.target)
            call_sites.append(CallSite(proc.name, len(call_sites), stmt.callee, stmt))
        elif isinstance(stmt, ast.CallStmt):
            call_sites.append(CallSite(proc.name, len(call_sites), stmt.callee, stmt))
        elif isinstance(stmt, ast.Return) and stmt.expr is not None:
            has_value_return = True
        is_call = isinstance(stmt, (ast.CallStmt, ast.CallAssign))
        for expr in ast.walk_expressions(stmt):
            referenced.update(ast.expr_variables(expr))
            # Bare-variable call arguments are usage-ambiguous (they may
            # pass a whole array by reference); everything else classifies.
            if not (is_call and isinstance(expr, ast.Var)):
                _classify_usage(expr, array_names, scalar_names)
    formal_set = set(proc.formals)
    locals_ = frozenset(
        name
        for name in assigned | referenced
        if name not in formal_set and name not in globals_in_scope
    )
    return ProcedureSymbols(
        name=proc.name,
        formals=list(proc.formals),
        globals_in_scope=globals_in_scope,
        locals=locals_,
        assigned=frozenset(assigned),
        referenced=frozenset(referenced),
        call_sites=call_sites,
        has_value_return=has_value_return,
        array_names=frozenset(array_names),
        scalar_names=frozenset(scalar_names),
    )


def _classify_usage(
    expr: ast.Expr, array_names: Set[str], scalar_names: Set[str]
) -> None:
    """Mark each name's usage style (subscripted vs scalar) within ``expr``."""
    if isinstance(expr, ast.Var):
        scalar_names.add(expr.name)
    elif isinstance(expr, ast.Index):
        array_names.add(expr.name)
        _classify_usage(expr.index, array_names, scalar_names)
    elif isinstance(expr, ast.Unary):
        _classify_usage(expr.operand, array_names, scalar_names)
    elif isinstance(expr, ast.Binary):
        _classify_usage(expr.left, array_names, scalar_names)
        _classify_usage(expr.right, array_names, scalar_names)
