"""A FORTRAN 77 subset front end.

The paper's prototype analyzed Fortran; this module accepts a F77-flavoured
surface syntax and translates it to the same AST the rest of the system
consumes, so genuinely Fortran-looking sources run through the full
pipeline::

          COMMON G1, G2
          BLOCK DATA
            DATA G1 /1.5/
          END

          PROGRAM MAIN
            CALL SUB1(0)
          END

          SUBROUTINE SUB1(F1)
            X = 1
            IF (F1 .NE. 0) THEN
              Y = 1
            ELSE
              Y = 0
            ENDIF
            CALL SUB2(Y, 4, F1, X)
          END

Supported subset (documented deviations from full F77):

- program units: ``PROGRAM``, ``SUBROUTINE``, ``FUNCTION``, ``BLOCK DATA``,
  each closed by ``END``;
- ``COMMON [/blk/] a, b`` declares globals (block names are ignored: the
  reproduction models one global name space);
- ``DATA name /literal/`` (inside BLOCK DATA) and plain assignments there;
- statements: assignment, ``CALL``, block ``IF (c) THEN / ELSE / ENDIF``,
  logical ``IF (c) stmt``, ``DO v = e1, e2 [, e3] ... ENDDO`` (literal step;
  translated to a ``while`` loop — F77's precomputed trip count is *not*
  modelled, so a body that modifies the index changes behaviour),
  ``DO WHILE (c) ... ENDDO``, ``PRINT *, expr``, ``RETURN``,
  ``CONTINUE`` (no-op);
- ``DIMENSION A(n) [, B(m) ...]`` declares arrays for the enclosing unit
  (bounds are recorded but not enforced, matching MiniF's unbounded
  arrays); a dimensioned name used as ``A(I)`` is an array reference, which
  resolves FORTRAN's call-vs-subscript paren ambiguity;
- a FUNCTION's result is assigned to the function name, read back by
  ``RETURN``/``END`` (translated through a result variable);
- operators: arithmetic ``+ - * /``, the ``MOD(a, b)`` intrinsic (MiniF
  ``%``), relationals ``.EQ. .NE. .LT. .LE. .GT. .GE.``, logicals
  ``.AND. .OR. .NOT.``;
- comment lines start with ``C``, ``c``, ``*``, or ``!``; ``!`` also starts
  an inline comment; continuation lines, labels, GOTO, and type
  declarations (``INTEGER``/``REAL`` — ignored if present) are out of scope.

Identifiers are case-insensitive and normalized to lower case.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import ParseError, SourcePos
from repro.lang import ast
from repro.lang.parser import parse_expression

_DOT_OPS = {
    ".eq.": "==",
    ".ne.": "!=",
    ".lt.": "<",
    ".le.": "<=",
    ".gt.": ">",
    ".ge.": ">=",
    ".and.": " and ",
    ".or.": " or ",
    ".not.": " not ",
}

class _Lines:
    """Pre-processed logical lines with their original line numbers."""

    def __init__(self, source: str):
        self.lines: List[Tuple[int, str]] = []
        #: ``(line, text)`` of every comment (fixed-form column-1 and
        #: ``!``-style, full-line or inline), for the suppression scan.
        self.comments: List[Tuple[int, str]] = []
        for number, raw in enumerate(source.splitlines(), start=1):
            # Fixed-form comments: 'C', 'c', or '*' in COLUMN 1, standing
            # alone or followed by whitespace.  (Checking the raw line
            # matters: an indented assignment to a variable named `c` is a
            # statement, not a comment.)
            head = raw[:1]
            if head in ("C", "c", "*") and (len(raw) == 1 or raw[1] in " \t"):
                self.comments.append((number, raw[1:]))
                continue
            stripped = raw.strip()
            if not stripped or stripped == "*":
                continue
            if stripped.startswith("!"):
                self.comments.append((number, stripped[1:]))
                continue
            if "!" in stripped:
                stripped, tail = stripped.split("!", 1)
                self.comments.append((number, tail))
                stripped = stripped.strip()
                if not stripped:
                    continue
            self.lines.append((number, stripped))
        self.index = 0

    def peek(self) -> Optional[Tuple[int, str]]:
        if self.index < len(self.lines):
            return self.lines[self.index]
        return None

    def next(self) -> Tuple[int, str]:
        item = self.peek()
        if item is None:
            raise ParseError("unexpected end of FORTRAN source")
        self.index += 1
        return item


def _pos(line_number: int) -> SourcePos:
    return SourcePos(line_number, 1)


def _translate_expr(text: str, line_number: int) -> ast.Expr:
    """Translate a F77 expression by rewriting dot-operators to MiniF."""
    rewritten = text
    for dotted, replacement in _DOT_OPS.items():
        pattern = re.compile(re.escape(dotted), re.IGNORECASE)
        rewritten = pattern.sub(replacement, rewritten)
    rewritten = _convert_mod_intrinsic(rewritten, line_number)
    rewritten = rewritten.lower()
    try:
        return parse_expression(rewritten)
    except ParseError as error:
        raise ParseError(
            f"bad FORTRAN expression {text!r}: {error.message}", _pos(line_number)
        ) from error


def _convert_mod_intrinsic(text: str, line_number: int) -> str:
    """Rewrite ``MOD(a, b)`` to ``((a) % (b))`` (recursively)."""
    while True:
        match = re.search(r"\bmod\s*\(", text, re.IGNORECASE)
        if match is None:
            return text
        open_paren = match.end() - 1
        depth = 0
        comma = -1
        close = -1
        for i in range(open_paren, len(text)):
            char = text[i]
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0:
                    close = i
                    break
            elif char == "," and depth == 1:
                comma = i
        if close < 0 or comma < 0:
            raise ParseError("malformed MOD(a, b)", _pos(line_number))
        a = text[open_paren + 1:comma]
        b = text[comma + 1:close]
        text = (
            text[:match.start()] + f"(({a}) % ({b}))" + text[close + 1:]
        )


def _convert_subscripts(text: str, dims, line_number: int) -> str:
    """Rewrite ``A(I)`` to ``A[I]`` for every DIMENSIONed name.

    Resolves FORTRAN's paren ambiguity: a parenthesized reference to a
    dimensioned name is an array subscript; everything else stays a call or
    grouping.  Nested subscripts are converted recursively.
    """
    if not dims:
        return text
    out = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            name = text[i:j]
            k = j
            while k < n and text[k] in " \t":
                k += 1
            if k < n and text[k] == "(" and name.lower() in dims:
                depth = 0
                m = k
                while m < n:
                    if text[m] == "(":
                        depth += 1
                    elif text[m] == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    m += 1
                if m >= n:
                    raise ParseError(
                        f"unbalanced subscript on {name!r}", _pos(line_number)
                    )
                inner = _convert_subscripts(text[k + 1:m], dims, line_number)
                out.append(f"{name}[{inner}]")
                i = m + 1
                continue
            out.append(name)
            i = j
            continue
        out.append(ch)
        i += 1
    return "".join(out)


_UNIT_RE = re.compile(
    r"^(program|subroutine|function|block\s+data)\b\s*(\w+)?\s*(\(([^)]*)\))?\s*$",
    re.IGNORECASE,
)
_COMMON_RE = re.compile(r"^common\s*(/\s*\w+\s*/)?\s*(.+)$", re.IGNORECASE)
_DATA_RE = re.compile(r"^data\s+(\w+)\s*/\s*([^/]+)\s*/\s*$", re.IGNORECASE)
_CALL_RE = re.compile(r"^call\s+(\w+)\s*(\((.*)\))?\s*$", re.IGNORECASE)
_PRINT_RE = re.compile(r"^print\s*\*\s*,\s*(.+)$", re.IGNORECASE)
_IF_THEN_RE = re.compile(r"^if\s*\((.*)\)\s*then$", re.IGNORECASE)
_IF_LOGICAL_RE = re.compile(r"^if\s*\((.*)\)\s*(\S.*)$", re.IGNORECASE)
_DO_WHILE_RE = re.compile(r"^do\s+while\s*\((.*)\)$", re.IGNORECASE)
_DO_RE = re.compile(
    r"^do\s+(\w+)\s*=\s*([^,]+),\s*([^,]+?)(?:\s*,\s*(.+))?$", re.IGNORECASE
)
_ASSIGN_RE = re.compile(r"^(\w+)\s*=\s*(.+)$")
_ARRAY_ASSIGN_RE = re.compile(r"^(\w+)\s*\[(.+)\]\s*=\s*(.+)$")
_CALL_ASSIGN_RE = re.compile(r"^(\w+)\s*=\s*(\w+)\s*\((.*)\)\s*$")
_DECL_RE = re.compile(r"^(integer|real|logical|implicit)\b", re.IGNORECASE)
_DIMENSION_RE = re.compile(r"^dimension\s+(.+)$", re.IGNORECASE)
_DIM_ENTRY_RE = re.compile(r"^([A-Za-z_]\w*)\s*\(\s*[\w\s,]*\s*\)$")


def scan_comments(source: str) -> List[Tuple[int, str]]:
    """``(line, text)`` of every comment in a F77 source.

    Covers fixed-form column-1 (``C``/``c``/``*``) comments and ``!``-style
    comments, whether full-line or trailing a statement.  Never raises — the
    scan is line-based and independent of statement parsing.
    """
    return _Lines(source).comments


def parse_fortran(source: str) -> ast.Program:
    """Parse a F77-subset source into a MiniF program AST."""
    lines = _Lines(source)
    globals_order: List[str] = []
    inits: List[ast.GlobalInit] = []
    procedures: List[ast.Procedure] = []

    while lines.peek() is not None:
        number, text = lines.peek()
        common = _COMMON_RE.match(text)
        if common:
            lines.next()
            for name in common.group(2).split(","):
                cleaned = name.strip().lower()
                if not cleaned.isidentifier():
                    raise ParseError(
                        f"bad COMMON variable {name.strip()!r}", _pos(number)
                    )
                if cleaned not in globals_order:
                    globals_order.append(cleaned)
            continue
        unit = _UNIT_RE.match(text)
        if not unit:
            raise ParseError(
                f"expected a program unit or COMMON, found {text!r}", _pos(number)
            )
        kind = re.sub(r"\s+", " ", unit.group(1).lower())
        lines.next()
        if kind == "block data":
            inits.extend(_parse_block_data(lines))
        else:
            procedures.append(_parse_unit(kind, unit, lines, number))
    return ast.Program(globals_order, inits, procedures)


def _parse_block_data(lines: _Lines) -> List[ast.GlobalInit]:
    inits: List[ast.GlobalInit] = []
    while True:
        number, text = lines.next()
        if text.lower() == "end":
            return inits
        data = _DATA_RE.match(text)
        if data:
            name = data.group(1).lower()
            value = _literal_value(data.group(2).strip(), number)
            inits.append(ast.GlobalInit(name, value, _pos(number)))
            continue
        assign = _ASSIGN_RE.match(text)
        if assign:
            name = assign.group(1).lower()
            value = _literal_value(assign.group(2).strip(), number)
            inits.append(ast.GlobalInit(name, value, _pos(number)))
            continue
        raise ParseError(f"bad BLOCK DATA statement {text!r}", _pos(number))


def _literal_value(text: str, number: int):
    expr = _translate_expr(text, number)
    value = ast.literal_value(expr)
    if value is None:
        raise ParseError(
            f"BLOCK DATA requires literal constants, found {text!r}", _pos(number)
        )
    return value


def _parse_unit(kind: str, unit, lines: _Lines, number: int) -> ast.Procedure:
    name = (unit.group(2) or "main").lower()
    params_text = unit.group(4) or ""
    formals = [
        p.strip().lower() for p in params_text.split(",") if p.strip()
    ]
    if kind == "program":
        name = "main"
        formals = []
    is_function = kind == "function"
    result_var = f"{name}_result" if is_function else None

    dims: set = set()
    body = _parse_statements(lines, terminators=("end",), proc_name=name,
                             result_var=result_var, dims=dims)
    lines.next()  # consume END
    stmts = list(body)
    if is_function:
        stmts.append(ast.Return(ast.Var(result_var)))
    return ast.Procedure(name, formals, ast.Block(stmts), _pos(number))


def _parse_statements(
    lines: _Lines,
    terminators: Tuple[str, ...],
    proc_name: str,
    result_var: Optional[str],
    dims,
) -> List[ast.Stmt]:
    stmts: List[ast.Stmt] = []
    while True:
        item = lines.peek()
        if item is None:
            raise ParseError(
                f"missing {'/'.join(t.upper() for t in terminators)}"
            )
        number, text = item
        if text.lower().replace(" ", "") in terminators:
            return stmts
        lines.next()
        stmt = _parse_statement(text, number, lines, proc_name, result_var, dims)
        if stmt is not None:
            stmts.append(stmt)


def _parse_statement(
    text: str,
    number: int,
    lines: _Lines,
    proc_name: str,
    result_var: Optional[str],
    dims,
) -> Optional[ast.Stmt]:
    lowered = text.lower()
    if lowered == "continue":
        return None
    dimension = _DIMENSION_RE.match(text)
    if dimension:
        _register_dimensions(dimension.group(1), dims, number)
        return None
    if _DECL_RE.match(text):
        return None  # type declarations carry no information here
    text = _convert_subscripts(text, dims, number)
    lowered = text.lower()
    if lowered == "return":
        if result_var is not None:
            return ast.Return(ast.Var(result_var), _pos(number))
        return ast.Return(None, _pos(number))

    call = _CALL_RE.match(text)
    if call:
        args = _parse_args(call.group(3) or "", number)
        return ast.CallStmt(call.group(1).lower(), args, _pos(number))

    printed = _PRINT_RE.match(text)
    if printed:
        return ast.Print(_translate_expr(printed.group(1), number), _pos(number))

    if_then = _IF_THEN_RE.match(text)
    if if_then:
        return _parse_if_block(
            if_then.group(1), number, lines, proc_name, result_var, dims
        )

    do_while = _DO_WHILE_RE.match(text)
    if do_while:
        cond = _translate_expr(do_while.group(1), number)
        body = _parse_statements(lines, ("enddo",), proc_name, result_var, dims)
        lines.next()  # ENDDO
        return ast.While(cond, ast.Block(body), _pos(number))

    do_loop = _DO_RE.match(text)
    if do_loop:
        return _parse_do(do_loop, number, lines, proc_name, result_var, dims)

    array_assign = _ARRAY_ASSIGN_RE.match(text)
    if array_assign:
        target = array_assign.group(1).lower()
        index = _translate_expr(array_assign.group(2), number)
        expr = _translate_expr(array_assign.group(3), number)
        return ast.AssignIndex(target, index, expr, _pos(number))

    call_assign = _CALL_ASSIGN_RE.match(text)
    if call_assign and call_assign.group(2).lower() != "mod":
        target = call_assign.group(1).lower()
        callee = call_assign.group(2).lower()
        args = _parse_args(call_assign.group(3), number)
        target = _map_result(target, proc_name, result_var)
        return ast.CallAssign(target, callee, args, _pos(number))

    # Logical IF must be tried after block IF and loops.
    if_logical = _IF_LOGICAL_RE.match(text)
    if if_logical and if_logical.group(2).lower() != "then":
        cond = _translate_expr(if_logical.group(1), number)
        inner = _parse_statement(
            if_logical.group(2), number, lines, proc_name, result_var, dims
        )
        if inner is None:
            raise ParseError("empty logical IF", _pos(number))
        return ast.If(cond, ast.Block([inner]), None, _pos(number))

    assign = _ASSIGN_RE.match(text)
    if assign:
        target = _map_result(assign.group(1).lower(), proc_name, result_var)
        expr = _translate_expr(assign.group(2), number)
        return ast.Assign(target, expr, _pos(number))

    raise ParseError(f"unsupported FORTRAN statement {text!r}", _pos(number))


def _register_dimensions(entries_text: str, dims, number: int) -> None:
    """Record the names declared by one DIMENSION statement."""
    depth = 0
    current: List[str] = []
    pieces: List[str] = []
    for char in entries_text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            pieces.append("".join(current))
            current = []
        else:
            current.append(char)
    pieces.append("".join(current))
    for piece in pieces:
        entry = piece.strip()
        match = _DIM_ENTRY_RE.match(entry)
        if not match:
            raise ParseError(
                f"bad DIMENSION entry {entry!r}", _pos(number)
            )
        dims.add(match.group(1).lower())


def _parse_args(args_text: str, number: int) -> List[ast.Expr]:
    """Split an argument list on top-level commas and translate each."""
    text = args_text.strip()
    if not text:
        return []
    pieces: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise ParseError(
                    f"unbalanced parentheses in arguments {args_text!r}",
                    _pos(number),
                )
        if char == "," and depth == 0:
            pieces.append("".join(current))
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise ParseError(
            f"unbalanced parentheses in arguments {args_text!r}", _pos(number)
        )
    pieces.append("".join(current))
    return [_translate_expr(piece.strip(), number) for piece in pieces]


def _map_result(target: str, proc_name: str, result_var: Optional[str]) -> str:
    if result_var is not None and target == proc_name:
        return result_var
    return target


def _parse_if_block(
    cond_text: str,
    number: int,
    lines: _Lines,
    proc_name: str,
    result_var: Optional[str],
    dims,
) -> ast.If:
    cond = _translate_expr(cond_text, number)
    then_stmts = _parse_statements(
        lines, ("else", "endif"), proc_name, result_var, dims
    )
    marker_number, marker = lines.next()
    else_block: Optional[ast.Block] = None
    if marker.lower() == "else":
        else_stmts = _parse_statements(lines, ("endif",), proc_name, result_var, dims)
        lines.next()
        else_block = ast.Block(else_stmts)
    elif marker.lower().replace(" ", "") != "endif":
        raise ParseError(f"expected ELSE or ENDIF, found {marker!r}", _pos(marker_number))
    return ast.If(cond, ast.Block(then_stmts), else_block, _pos(number))


def _parse_do(
    do_match,
    number: int,
    lines: _Lines,
    proc_name: str,
    result_var: Optional[str],
    dims,
) -> ast.Block:
    var = do_match.group(1).lower()
    start = _translate_expr(do_match.group(2), number)
    stop = _translate_expr(do_match.group(3), number)
    step_text = do_match.group(4)
    step_value = 1
    if step_text is not None:
        step_expr = _translate_expr(step_text, number)
        literal = ast.literal_value(step_expr)
        if literal is None or literal == 0:
            raise ParseError(
                "DO step must be a non-zero literal in this subset", _pos(number)
            )
        step_value = literal
    body = _parse_statements(lines, ("enddo",), proc_name, result_var, dims)
    lines.next()  # ENDDO
    comparison = "<=" if step_value > 0 else ">="
    increment = ast.Assign(
        var, ast.Binary("+", ast.Var(var), _step_literal(step_value))
    )
    loop = ast.While(
        ast.Binary(comparison, ast.Var(var), stop),
        ast.Block(body + [increment]),
        _pos(number),
    )
    return ast.Block([ast.Assign(var, start, _pos(number)), loop], _pos(number))


def _step_literal(value) -> ast.Expr:
    if isinstance(value, float):
        if value < 0:
            return ast.Unary("-", ast.FloatLit(-value))
        return ast.FloatLit(value)
    if value < 0:
        return ast.Unary("-", ast.IntLit(-value))
    return ast.IntLit(value)


def fortran_to_minif(source: str) -> str:
    """Translate F77-subset source to pretty-printed MiniF text."""
    from repro.lang.pretty import pretty_program

    return pretty_program(parse_fortran(source))


# ----------------------------------------------------------------------
# The reverse direction: MiniF -> FORTRAN 77 subset.
# ----------------------------------------------------------------------

_F77_OPS = {
    "==": ".EQ.", "!=": ".NE.", "<": ".LT.", "<=": ".LE.",
    ">": ".GT.", ">=": ".GE.", "and": ".AND.", "or": ".OR.",
}

_F77_KEYWORDS = frozenset({
    "program", "subroutine", "function", "end", "call", "return", "print",
    "if", "then", "else", "endif", "do", "enddo", "while", "continue",
    "common", "data", "dimension", "mod", "integer", "real", "logical",
})


class FortranEmissionError(ParseError):
    """The MiniF program uses a construct the F77 emitter cannot express."""


def minif_to_fortran(program: ast.Program) -> str:
    """Emit a MiniF program as F77-subset source.

    ``parse_fortran(minif_to_fortran(p))`` is behaviourally equivalent to
    ``p`` (property-tested against the interpreter).  Raises
    :class:`FortranEmissionError` for inexpressible programs (a name that
    collides with a FORTRAN keyword, or a value-returning procedure whose
    own name is also one of its variables).
    """
    from repro.lang.symbols import collect_symbols

    symbols = collect_symbols(program)
    lines: List[str] = []

    def check_name(name: str) -> str:
        if name.lower() in _F77_KEYWORDS:
            raise FortranEmissionError(
                f"name {name!r} collides with a FORTRAN keyword"
            )
        return name

    if program.global_names:
        names = ", ".join(check_name(n) for n in program.global_names)
        lines.append(f"      COMMON {names}")
    if program.inits:
        lines.append("      BLOCK DATA")
        for entry in program.inits:
            lines.append(f"        DATA {check_name(entry.name)} /{entry.value!r}/")
        lines.append("      END")

    for proc in program.procedures:
        proc_symbols = symbols[proc.name]
        is_function = proc_symbols.has_value_return
        if is_function and proc.name in (
            proc_symbols.locals | proc_symbols.formal_set
        ):
            raise FortranEmissionError(
                f"function {proc.name!r} also names one of its variables"
            )
        formals = ", ".join(check_name(f) for f in proc.formals)
        lines.append("")
        if proc.name == "main":
            lines.append("      PROGRAM MAIN")
        elif is_function:
            lines.append(f"      FUNCTION {check_name(proc.name)}({formals})")
        else:
            lines.append(f"      SUBROUTINE {check_name(proc.name)}({formals})")
        for array in sorted(proc_symbols.array_names):
            lines.append(f"        DIMENSION {check_name(array)}(1)")
        _emit_block(proc.body, lines, indent=8, proc=proc, function=is_function)
        lines.append("      END")
    return "\n".join(lines) + "\n"


def _emit_block(block: ast.Block, lines: List[str], indent: int, proc, function) -> None:
    for stmt in block.stmts:
        _emit_stmt(stmt, lines, indent, proc, function)


def _emit_stmt(stmt: ast.Stmt, lines: List[str], indent: int, proc, function) -> None:
    pad = " " * indent
    if isinstance(stmt, ast.Block):
        _emit_block(stmt, lines, indent, proc, function)
    elif isinstance(stmt, ast.Assign):
        lines.append(f"{pad}{stmt.target} = {_emit_expr(stmt.expr)}")
    elif isinstance(stmt, ast.AssignIndex):
        lines.append(
            f"{pad}{stmt.target}({_emit_expr(stmt.index)}) = {_emit_expr(stmt.expr)}"
        )
    elif isinstance(stmt, ast.CallStmt):
        args = ", ".join(_emit_expr(a) for a in stmt.args)
        lines.append(f"{pad}CALL {stmt.callee}({args})")
    elif isinstance(stmt, ast.CallAssign):
        if stmt.callee.lower() == "mod":
            raise FortranEmissionError("cannot call a procedure named 'mod'")
        args = ", ".join(_emit_expr(a) for a in stmt.args)
        lines.append(f"{pad}{stmt.target} = {stmt.callee}({args})")
    elif isinstance(stmt, ast.Print):
        lines.append(f"{pad}PRINT *, {_emit_expr(stmt.expr)}")
    elif isinstance(stmt, ast.Return):
        if stmt.expr is not None:
            if not function:
                raise FortranEmissionError(
                    "value return outside a value-returning procedure"
                )
            lines.append(f"{pad}{proc.name} = {_emit_expr(stmt.expr)}")
        lines.append(f"{pad}RETURN")
    elif isinstance(stmt, ast.If):
        lines.append(f"{pad}IF ({_emit_expr(stmt.cond)}) THEN")
        _emit_block(stmt.then_block, lines, indent + 2, proc, function)
        if stmt.else_block is not None:
            lines.append(f"{pad}ELSE")
            _emit_block(stmt.else_block, lines, indent + 2, proc, function)
        lines.append(f"{pad}ENDIF")
    elif isinstance(stmt, ast.While):
        lines.append(f"{pad}DO WHILE ({_emit_expr(stmt.cond)})")
        _emit_block(stmt.body, lines, indent + 2, proc, function)
        lines.append(f"{pad}ENDDO")
    else:
        raise FortranEmissionError(f"unsupported statement {stmt!r}")


def _emit_expr(expr: ast.Expr) -> str:
    """Fully parenthesized emission: correctness over prettiness."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.FloatLit):
        text = repr(expr.value)
        return text if ("." in text or "e" in text or "E" in text) else text + ".0"
    if isinstance(expr, ast.Var):
        if expr.name.lower() in _F77_KEYWORDS:
            raise FortranEmissionError(
                f"name {expr.name!r} collides with a FORTRAN keyword"
            )
        return expr.name
    if isinstance(expr, ast.Index):
        return f"{expr.name}({_emit_expr(expr.index)})"
    if isinstance(expr, ast.Unary):
        if expr.op == "not":
            return f"(.NOT. {_emit_expr(expr.operand)})"
        return f"(-{_emit_expr(expr.operand)})"
    if isinstance(expr, ast.Binary):
        left = _emit_expr(expr.left)
        right = _emit_expr(expr.right)
        if expr.op == "%":
            return f"MOD({left}, {right})"
        op = _F77_OPS.get(expr.op, expr.op)
        return f"({left} {op} {right})"
    raise FortranEmissionError(f"unsupported expression {expr!r}")
