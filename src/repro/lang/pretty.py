"""Pretty-printer (unparser) for MiniF ASTs.

``parse_program(pretty_program(ast))`` reproduces an equal AST (positions are
excluded from AST equality), which is asserted by a property test.  The
printer inserts parentheses exactly where precedence requires them.
"""

from __future__ import annotations

from typing import List

from repro.lang import ast

#: Precedence levels used to decide where parentheses are required.
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "not": 3,
    "==": 4,
    "!=": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
    "u-": 7,
}

_COMPARISON_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})


def _float_repr(value: float) -> str:
    """Render a float so it re-lexes as a FLOAT token (always has '.' or 'e')."""
    text = repr(value)
    if "." in text or "e" in text or "E" in text:
        if text.startswith("-"):
            return text
        return text
    return text + ".0"


def pretty_expr(expr: ast.Expr) -> str:
    """Render an expression with minimal parentheses."""
    return _expr(expr, 0)


def _expr(expr: ast.Expr, parent_prec: int) -> str:
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.FloatLit):
        return _float_repr(expr.value)
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.Index):
        return f"{expr.name}[{_expr(expr.index, 0)}]"
    if isinstance(expr, ast.Unary):
        if expr.op == "not":
            prec = _PRECEDENCE["not"]
            text = f"not {_expr(expr.operand, prec)}"
        else:
            prec = _PRECEDENCE["u-"]
            text = f"-{_expr(expr.operand, prec)}"
        if prec < parent_prec:
            return f"({text})"
        return text
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        left = _expr(expr.left, prec)
        # Right operand of a same-precedence left-associative operator, and
        # any comparison operand, needs parens to survive a round-trip.
        if expr.op in _COMPARISON_OPS:
            right = _expr(expr.right, prec + 1)
            left = _expr(expr.left, prec + 1)
        else:
            right = _expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    raise TypeError(f"unknown expression node: {expr!r}")


def pretty_stmt(stmt: ast.Stmt, indent: int = 0) -> str:
    """Render a statement (with trailing newline) at the given indent level."""
    lines: List[str] = []
    _stmt(stmt, indent, lines)
    return "".join(line + "\n" for line in lines)


def _stmt(stmt: ast.Stmt, indent: int, lines: List[str]) -> None:
    pad = "    " * indent
    if isinstance(stmt, ast.Block):
        lines.append(pad + "{")
        for child in stmt.stmts:
            _stmt(child, indent + 1, lines)
        lines.append(pad + "}")
    elif isinstance(stmt, ast.Assign):
        lines.append(f"{pad}{stmt.target} = {pretty_expr(stmt.expr)};")
    elif isinstance(stmt, ast.AssignIndex):
        lines.append(
            f"{pad}{stmt.target}[{pretty_expr(stmt.index)}] = "
            f"{pretty_expr(stmt.expr)};"
        )
    elif isinstance(stmt, ast.CallStmt):
        args = ", ".join(pretty_expr(arg) for arg in stmt.args)
        lines.append(f"{pad}call {stmt.callee}({args});")
    elif isinstance(stmt, ast.CallAssign):
        args = ", ".join(pretty_expr(arg) for arg in stmt.args)
        lines.append(f"{pad}{stmt.target} = {stmt.callee}({args});")
    elif isinstance(stmt, ast.If):
        lines.append(f"{pad}if ({pretty_expr(stmt.cond)})")
        _stmt(stmt.then_block, indent, lines)
        if stmt.else_block is not None:
            lines.append(pad + "else")
            _stmt(stmt.else_block, indent, lines)
    elif isinstance(stmt, ast.While):
        lines.append(f"{pad}while ({pretty_expr(stmt.cond)})")
        _stmt(stmt.body, indent, lines)
    elif isinstance(stmt, ast.Return):
        if stmt.expr is None:
            lines.append(pad + "return;")
        else:
            lines.append(f"{pad}return {pretty_expr(stmt.expr)};")
    elif isinstance(stmt, ast.Print):
        lines.append(f"{pad}print({pretty_expr(stmt.expr)});")
    else:
        raise TypeError(f"unknown statement node: {stmt!r}")


def pretty_program(program: ast.Program) -> str:
    """Render a complete program as re-parseable MiniF source."""
    parts: List[str] = []
    if program.global_names:
        parts.append("global " + ", ".join(program.global_names) + ";")
    if program.inits:
        parts.append("init {")
        for entry in program.inits:
            if isinstance(entry.value, float):
                parts.append(f"    {entry.name} = {_float_repr(entry.value)};")
            else:
                parts.append(f"    {entry.name} = {entry.value};")
        parts.append("}")
    for proc in program.procedures:
        formals = ", ".join(proc.formals)
        parts.append("")
        parts.append(f"proc {proc.name}({formals})")
        parts.append(pretty_stmt(proc.body).rstrip("\n"))
    return "\n".join(parts) + "\n"
