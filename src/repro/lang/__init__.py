"""The MiniF language frontend.

MiniF is a small imperative language with Fortran 77 semantics, designed to
exercise exactly the features the paper's analyses consume:

- ``global`` declarations (Fortran COMMON blocks),
- ``init { g = literal; }`` blocks (Fortran BLOCK DATA),
- procedures with **by-reference** formal parameters (bare-variable arguments
  alias the caller's variable; compound expressions pass a temporary),
- structured control flow (``if``/``else``, ``while``),
- integer and floating-point scalars.

Grammar sketch::

    program   := (global_decl | init_block | proc_decl)*
    global_decl := "global" ident ("," ident)* ";"
    init_block  := "init" "{" (ident "=" signed_literal ";")* "}"
    proc_decl   := "proc" ident "(" [ident ("," ident)*] ")" block
    stmt      := block | if | while | call | return | print | assignment
    assignment:= ident "=" (ident "(" args ")" | expr) ";"

A procedure call may appear either as a statement (``call p(...);``) or as the
*entire* right-hand side of an assignment (``x = f(...);``); calls are not
permitted inside compound expressions, which keeps expressions side-effect
free (as in the paper's Fortran setting after call extraction).
"""

from repro.lang.ast import (
    Assign,
    Binary,
    Block,
    CallAssign,
    CallStmt,
    Expr,
    FloatLit,
    GlobalInit,
    If,
    IntLit,
    Print,
    Procedure,
    Program,
    Return,
    Stmt,
    Unary,
    Var,
    While,
)
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse_expression, parse_program
from repro.lang.pretty import pretty_expr, pretty_program, pretty_stmt
from repro.lang.validate import validate_program

__all__ = [
    "Assign",
    "Binary",
    "Block",
    "CallAssign",
    "CallStmt",
    "Expr",
    "FloatLit",
    "GlobalInit",
    "If",
    "IntLit",
    "Lexer",
    "Parser",
    "Print",
    "Procedure",
    "Program",
    "Return",
    "Stmt",
    "Unary",
    "Var",
    "While",
    "parse_expression",
    "parse_program",
    "pretty_expr",
    "pretty_program",
    "pretty_stmt",
    "tokenize",
    "validate_program",
]
