"""Deep-copying and renaming of AST fragments.

Used by the procedure-cloning and inlining transformations: both need fresh
statement/expression trees (transformations annotate and rebuild nodes, so
sharing would couple clones), and inlining additionally substitutes names.

``rename`` maps *variable* names; ``rename_calls`` maps callee names.  Either
may be partial — unmapped names are kept.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.lang import ast

NameMap = Dict[str, str]


def _mapped(name: str, mapping: Optional[NameMap]) -> str:
    if mapping is None:
        return name
    return mapping.get(name, name)


def clone_expr(expr: ast.Expr, rename: Optional[NameMap] = None) -> ast.Expr:
    """Deep-copy an expression, renaming variables via ``rename``."""
    if isinstance(expr, ast.IntLit):
        return ast.IntLit(expr.value, expr.pos)
    if isinstance(expr, ast.FloatLit):
        return ast.FloatLit(expr.value, expr.pos)
    if isinstance(expr, ast.Var):
        return ast.Var(_mapped(expr.name, rename), expr.pos)
    if isinstance(expr, ast.Unary):
        return ast.Unary(expr.op, clone_expr(expr.operand, rename), expr.pos)
    if isinstance(expr, ast.Binary):
        return ast.Binary(
            expr.op,
            clone_expr(expr.left, rename),
            clone_expr(expr.right, rename),
            expr.pos,
        )
    if isinstance(expr, ast.Index):
        return ast.Index(
            _mapped(expr.name, rename), clone_expr(expr.index, rename), expr.pos
        )
    raise TypeError(f"unknown expression node {expr!r}")


def clone_stmt(
    stmt: ast.Stmt,
    rename: Optional[NameMap] = None,
    rename_calls: Optional[NameMap] = None,
) -> ast.Stmt:
    """Deep-copy a statement, renaming variables and callees."""
    if isinstance(stmt, ast.Block):
        return clone_block(stmt, rename, rename_calls)
    if isinstance(stmt, ast.Assign):
        return ast.Assign(
            _mapped(stmt.target, rename), clone_expr(stmt.expr, rename), stmt.pos
        )
    if isinstance(stmt, ast.AssignIndex):
        return ast.AssignIndex(
            _mapped(stmt.target, rename),
            clone_expr(stmt.index, rename),
            clone_expr(stmt.expr, rename),
            stmt.pos,
        )
    if isinstance(stmt, ast.CallStmt):
        return ast.CallStmt(
            _mapped(stmt.callee, rename_calls),
            [clone_expr(arg, rename) for arg in stmt.args],
            stmt.pos,
        )
    if isinstance(stmt, ast.CallAssign):
        return ast.CallAssign(
            _mapped(stmt.target, rename),
            _mapped(stmt.callee, rename_calls),
            [clone_expr(arg, rename) for arg in stmt.args],
            stmt.pos,
        )
    if isinstance(stmt, ast.If):
        return ast.If(
            clone_expr(stmt.cond, rename),
            clone_block(stmt.then_block, rename, rename_calls),
            clone_block(stmt.else_block, rename, rename_calls)
            if stmt.else_block is not None
            else None,
            stmt.pos,
        )
    if isinstance(stmt, ast.While):
        return ast.While(
            clone_expr(stmt.cond, rename),
            clone_block(stmt.body, rename, rename_calls),
            stmt.pos,
        )
    if isinstance(stmt, ast.Return):
        expr = clone_expr(stmt.expr, rename) if stmt.expr is not None else None
        return ast.Return(expr, stmt.pos)
    if isinstance(stmt, ast.Print):
        return ast.Print(clone_expr(stmt.expr, rename), stmt.pos)
    raise TypeError(f"unknown statement node {stmt!r}")


def clone_block(
    block: ast.Block,
    rename: Optional[NameMap] = None,
    rename_calls: Optional[NameMap] = None,
) -> ast.Block:
    """Deep-copy a block."""
    return ast.Block(
        [clone_stmt(s, rename, rename_calls) for s in block.stmts], block.pos
    )


def clone_procedure(
    proc: ast.Procedure,
    new_name: Optional[str] = None,
    rename: Optional[NameMap] = None,
    rename_calls: Optional[NameMap] = None,
) -> ast.Procedure:
    """Deep-copy a procedure, optionally renaming it and its variables."""
    formals = [_mapped(f, rename) for f in proc.formals]
    return ast.Procedure(
        new_name or proc.name,
        formals,
        clone_block(proc.body, rename, rename_calls),
        proc.pos,
    )


def clone_program(program: ast.Program) -> ast.Program:
    """Deep-copy a whole program."""
    return ast.Program(
        list(program.global_names),
        [ast.GlobalInit(e.name, e.value, e.pos) for e in program.inits],
        [clone_procedure(p) for p in program.procedures],
    )
