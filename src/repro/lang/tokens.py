"""Token kinds and the token record produced by the MiniF lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.errors import SourcePos


class TokenKind(enum.Enum):
    """Every kind of token the MiniF lexer can produce."""

    # Literals and identifiers.
    INT = "int"
    FLOAT = "float"
    IDENT = "ident"

    # Keywords.
    GLOBAL = "global"
    INIT = "init"
    PROC = "proc"
    IF = "if"
    ELSE = "else"
    WHILE = "while"
    CALL = "call"
    RETURN = "return"
    PRINT = "print"
    AND = "and"
    OR = "or"
    NOT = "not"

    # Punctuation.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"
    ASSIGN = "="

    # Operators.
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    EOF = "eof"


#: Keyword spelling -> token kind.
KEYWORDS = {
    "global": TokenKind.GLOBAL,
    "init": TokenKind.INIT,
    "proc": TokenKind.PROC,
    "if": TokenKind.IF,
    "else": TokenKind.ELSE,
    "while": TokenKind.WHILE,
    "call": TokenKind.CALL,
    "return": TokenKind.RETURN,
    "print": TokenKind.PRINT,
    "and": TokenKind.AND,
    "or": TokenKind.OR,
    "not": TokenKind.NOT,
}

#: Comparison operator token kinds, in the order tried by the lexer.
COMPARISON_KINDS = frozenset(
    {TokenKind.EQ, TokenKind.NE, TokenKind.LT, TokenKind.LE, TokenKind.GT, TokenKind.GE}
)

#: Additive/multiplicative arithmetic operator kinds.
ARITHMETIC_KINDS = frozenset(
    {TokenKind.PLUS, TokenKind.MINUS, TokenKind.STAR, TokenKind.SLASH, TokenKind.PERCENT}
)


@dataclass(frozen=True)
class Token:
    """A single lexed token.

    ``value`` holds the parsed payload: an ``int`` for INT tokens, a ``float``
    for FLOAT tokens, the identifier string for IDENT tokens, and the spelling
    for everything else.
    """

    kind: TokenKind
    value: Union[int, float, str]
    pos: SourcePos

    def __str__(self) -> str:
        return f"{self.kind.name}({self.value!r})@{self.pos}"
