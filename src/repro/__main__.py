"""``python -m repro`` — alias for the ``repro-icp`` command line."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
