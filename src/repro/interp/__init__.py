"""Reference interpreter for MiniF (the soundness oracle)."""

from repro.interp.interpreter import (
    ExecutionResult,
    Interpreter,
    Recorder,
    run_program,
)

__all__ = ["ExecutionResult", "Interpreter", "Recorder", "run_program"]
