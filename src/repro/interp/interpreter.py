"""A tree-walking interpreter implementing MiniF's dynamic semantics.

The interpreter is the ground truth against which every analysis is tested:

- *by-reference* parameter passing: a bare-variable argument shares its
  :class:`Cell` with the callee's formal; a compound expression passes a
  fresh cell (Fortran temporary);
- globals live in one shared frame, initialized from ``init`` blocks;
- reading an uninitialized variable is a runtime error;
- a step budget, a call-depth limit, and the evaluator's integer-magnitude
  cap (``repro.ir.eval.MAX_INT_BITS``) bound execution of generated
  programs — the last one bounds the *cost of each step*: without it a
  repeated-multiplication loop exhausts no budget yet never finishes.

The :class:`Recorder` trace hook observes the concrete value of every formal
and every global at each procedure entry, and of every argument at each call,
which lets tests check every constant claimed by an analysis against every
value that actually occurred.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import InterpreterError, StepLimitExceeded
from repro.ir.eval import EvalError, apply_binary, apply_unary, truthy
from repro.lang import ast

Value = Union[int, float]

#: Sentinel stored by the Recorder when a slot held more than one value.
MULTIPLE = object()


class Cell:
    """A mutable storage location (one variable binding)."""

    __slots__ = ("value", "initialized")

    def __init__(self, value: Optional[Value] = None):
        self.initialized = value is not None
        self.value: Value = value if value is not None else 0

    def read(self, name: str) -> Value:
        if not self.initialized:
            raise InterpreterError(f"read of uninitialized variable {name!r}")
        return self.value

    def write(self, value: Value) -> None:
        self.value = value
        self.initialized = True


class _ReturnSignal(Exception):
    def __init__(self, value: Optional[Value]):
        self.value = value


@dataclass
class ExecutionResult:
    """What a program run produced."""

    outputs: List[Value]
    steps: int


class Recorder:
    """Trace hook recording observed values for soundness checking.

    ``entry_values[(proc, var)]`` is the single value observed at every entry
    of ``proc`` for formal-or-global ``var``, or :data:`MULTIPLE` if runs
    disagreed.  ``call_args[(caller, site_index, arg_pos)]`` likewise for
    argument values, and ``call_globals[(caller, site_index, global)]`` for
    global values at call sites.
    """

    def __init__(self) -> None:
        self.entry_values: Dict[Tuple[str, str], object] = {}
        self.call_args: Dict[Tuple[str, int, int], object] = {}
        self.call_globals: Dict[Tuple[str, int, str], object] = {}
        self.entry_counts: Dict[str, int] = {}
        #: Executions of each call site, keyed (caller, site_index) — lets
        #: the soundness sanitizer catch claimed-unreachable sites that ran.
        self.call_counts: Dict[Tuple[str, int], int] = {}

    @staticmethod
    def _note(table: dict, key, value) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return  # arrays (dict-valued cells) are never recorded
        if key not in table:
            table[key] = value
        elif table[key] is not MULTIPLE:
            previous = table[key]
            same = type(previous) is type(value) and previous == value
            if not same:
                table[key] = MULTIPLE

    def on_entry(
        self, proc: str, formals: Dict[str, Optional[Value]], global_frame: Dict[str, Cell]
    ) -> None:
        self.entry_counts[proc] = self.entry_counts.get(proc, 0) + 1
        for var, value in formals.items():
            if value is not None:
                self._note(self.entry_values, (proc, var), value)
        for var, cell in global_frame.items():
            if cell.initialized:
                self._note(self.entry_values, (proc, var), cell.value)

    def on_call(
        self,
        caller: str,
        site_index: int,
        arg_values: List[Optional[Value]],
        global_frame: Dict[str, Cell],
    ) -> None:
        key = (caller, site_index)
        self.call_counts[key] = self.call_counts.get(key, 0) + 1
        for pos, value in enumerate(arg_values):
            if value is not None:
                self._note(self.call_args, (caller, site_index, pos), value)
        for var, cell in global_frame.items():
            if cell.initialized:
                self._note(self.call_globals, (caller, site_index, var), cell.value)


class Interpreter:
    """Executes a MiniF program from ``main``."""

    def __init__(
        self,
        program: ast.Program,
        max_steps: int = 1_000_000,
        max_depth: int = 200,
        recorder: Optional[Recorder] = None,
    ):
        self._program = program
        self._procs = program.procedure_map()
        self._globals: Dict[str, Cell] = {name: Cell() for name in program.global_names}
        for entry in program.inits:
            self._globals[entry.name].write(entry.value)
        self._max_steps = max_steps
        self._max_depth = max_depth
        self._steps = 0
        self._depth = 0
        self._recorder = recorder
        self.outputs: List[Value] = []

    # ------------------------------------------------------------------

    def run(self, entry: str = "main") -> ExecutionResult:
        """Execute from ``entry`` and return the observable outputs."""
        if entry not in self._procs:
            raise InterpreterError(f"no procedure named {entry!r}")
        self._invoke(self._procs[entry], [])
        return ExecutionResult(outputs=self.outputs, steps=self._steps)

    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self._max_steps:
            raise StepLimitExceeded(f"exceeded {self._max_steps} steps")

    def _invoke(self, proc: ast.Procedure, arg_cells: List[Cell]) -> Optional[Value]:
        if len(arg_cells) != len(proc.formals):
            raise InterpreterError(
                f"{proc.name!r} called with {len(arg_cells)} argument(s), "
                f"expected {len(proc.formals)}"
            )
        self._depth += 1
        if self._depth > self._max_depth:
            self._depth -= 1
            raise StepLimitExceeded(f"call depth exceeded {self._max_depth}")
        frame: Dict[str, Cell] = dict(zip(proc.formals, arg_cells))
        if self._recorder is not None:
            formal_values = {
                name: (cell.value if cell.initialized else None)
                for name, cell in frame.items()
            }
            self._recorder.on_entry(proc.name, formal_values, self._globals)
        try:
            self._exec_block(proc.body, frame, proc.name)
            return None
        except _ReturnSignal as signal:
            return signal.value
        finally:
            self._depth -= 1

    # ------------------------------------------------------------------

    def _cell(self, name: str, frame: Dict[str, Cell]) -> Cell:
        cell = frame.get(name)
        if cell is not None:
            return cell
        cell = self._globals.get(name)
        if cell is not None:
            return cell
        cell = Cell()
        frame[name] = cell
        return cell

    def _eval(self, expr: ast.Expr, frame: Dict[str, Cell]) -> Value:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.Var):
            value = self._cell(expr.name, frame).read(expr.name)
            if isinstance(value, dict):
                raise InterpreterError(
                    f"array {expr.name!r} used in a scalar context"
                )
            return value
        if isinstance(expr, ast.Index):
            return self._read_element(expr.name, expr.index, frame)
        if isinstance(expr, ast.Unary):
            operand = self._eval(expr.operand, frame)
            return apply_unary(expr.op, operand)
        if isinstance(expr, ast.Binary):
            left = self._eval(expr.left, frame)
            # `and`/`or` short-circuit left-to-right (matching the abstract
            # evaluator's left-operand refinement).
            if expr.op == "and" and not truthy(left):
                return 0
            if expr.op == "or" and truthy(left):
                return 1
            right = self._eval(expr.right, frame)
            try:
                return apply_binary(expr.op, left, right)
            except EvalError as error:
                raise InterpreterError(str(error)) from error
        raise InterpreterError(f"unknown expression node {expr!r}")

    def _exec_block(self, block: ast.Block, frame: Dict[str, Cell], proc: str) -> None:
        for stmt in block.stmts:
            self._exec_stmt(stmt, frame, proc)

    def _exec_stmt(self, stmt: ast.Stmt, frame: Dict[str, Cell], proc: str) -> None:
        self._tick()
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt, frame, proc)
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.expr, frame)
            self._cell(stmt.target, frame).write(value)
        elif isinstance(stmt, ast.AssignIndex):
            self._write_element(stmt.target, stmt.index, stmt.expr, frame)
        elif isinstance(stmt, ast.CallStmt):
            self._exec_call(stmt.callee, stmt.args, frame, proc, stmt)
        elif isinstance(stmt, ast.CallAssign):
            result = self._exec_call(stmt.callee, stmt.args, frame, proc, stmt)
            if result is None:
                raise InterpreterError(
                    f"{stmt.callee!r} returned no value in value position"
                )
            self._cell(stmt.target, frame).write(result)
        elif isinstance(stmt, ast.Print):
            self.outputs.append(self._eval(stmt.expr, frame))
        elif isinstance(stmt, ast.Return):
            value = self._eval(stmt.expr, frame) if stmt.expr is not None else None
            raise _ReturnSignal(value)
        elif isinstance(stmt, ast.If):
            if truthy(self._eval(stmt.cond, frame)):
                self._exec_block(stmt.then_block, frame, proc)
            elif stmt.else_block is not None:
                self._exec_block(stmt.else_block, frame, proc)
        elif isinstance(stmt, ast.While):
            while True:
                self._tick()
                if not truthy(self._eval(stmt.cond, frame)):
                    break
                self._exec_block(stmt.body, frame, proc)
        else:
            raise InterpreterError(f"unknown statement node {stmt!r}")

    def _eval_index(self, name: str, index_expr: ast.Expr, frame) -> int:
        index = self._eval(index_expr, frame)
        if isinstance(index, float) or isinstance(index, dict):
            raise InterpreterError(
                f"array index for {name!r} must be an integer, got {index!r}"
            )
        return index

    def _read_element(self, name: str, index_expr: ast.Expr, frame) -> Value:
        cell = self._cell(name, frame)
        store = cell.read(name)
        if not isinstance(store, dict):
            raise InterpreterError(f"scalar {name!r} used as an array")
        index = self._eval_index(name, index_expr, frame)
        if index not in store:
            raise InterpreterError(
                f"read of uninitialized element {name}[{index}]"
            )
        return store[index]

    def _write_element(
        self, name: str, index_expr: ast.Expr, value_expr: ast.Expr, frame
    ) -> None:
        index = self._eval_index(name, index_expr, frame)
        value = self._eval(value_expr, frame)
        cell = self._cell(name, frame)
        if not cell.initialized:
            cell.write({})
        if not isinstance(cell.value, dict):
            raise InterpreterError(f"scalar {name!r} used as an array")
        cell.value[index] = value

    def _exec_call(
        self,
        callee: str,
        args: List[ast.Expr],
        frame: Dict[str, Cell],
        caller: str,
        stmt: ast.Stmt,
    ) -> Optional[Value]:
        target = self._procs.get(callee)
        if target is None:
            raise InterpreterError(f"call to missing procedure {callee!r}")
        arg_cells: List[Cell] = []
        for arg in args:
            if isinstance(arg, ast.Var):
                arg_cells.append(self._cell(arg.name, frame))
            else:
                arg_cells.append(Cell(self._eval(arg, frame)))
        if self._recorder is not None:
            site_index = self._site_index(caller, stmt)
            arg_values = [
                cell.value if cell.initialized else None for cell in arg_cells
            ]
            self._recorder.on_call(caller, site_index, arg_values, self._globals)
        return self._invoke(target, arg_cells)

    def _site_index(self, caller: str, stmt: ast.Stmt) -> int:
        cache = getattr(self, "_site_cache", None)
        if cache is None:
            cache = {}
            for proc in self._program.procedures:
                index = 0
                for node in ast.walk_statements(proc.body):
                    if isinstance(node, (ast.CallStmt, ast.CallAssign)):
                        cache[id(node)] = index
                        index += 1
            self._site_cache = cache
        return cache[id(stmt)]


def run_program(
    program: ast.Program,
    max_steps: int = 1_000_000,
    max_depth: int = 200,
    recorder: Optional[Recorder] = None,
) -> ExecutionResult:
    """Execute ``program`` from ``main`` and return its outputs."""
    return Interpreter(
        program, max_steps=max_steps, max_depth=max_depth, recorder=recorder
    ).run()
