"""Post-fixpoint queries shared by the SCC engine's two backends.

After the sparse conditional constant fixpoint, the engine answers three
questions from the solved state: the procedure's return value, its exit
values for recorded variables, and the lattice facts at every call site.
The ``graph`` solver answers them directly from its worklist state; the
``flat`` solver reconstructs the same state (``values`` dict, reached-block
set, executable-edge set, with identical insertion orders) and then runs
**this exact code** over it.  Sharing the implementation is what guarantees
the two backends produce byte-identical results for everything downstream
of the fixpoint — any divergence can only come from the fixpoint itself,
which the differential suite pins.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.base import CallSiteValues, site_key
from repro.ir.cfg import CallInstr, Ret
from repro.ir.eval import evaluate_expr
from repro.ir.lattice import BOTTOM, TOP, LatticeValue, meet, meet_all
from repro.ir.ssa import SSAName


class SolverQueries:
    """Mixin answering post-fixpoint queries over solved SCC state.

    Requires the host to provide ``values`` (SSA name -> lattice value, in
    the solver's insertion order), ``reached_blocks``, ``_cfg``, and
    ``_effects``.
    """

    values: Dict[SSAName, LatticeValue]
    reached_blocks: Set[int]

    def _value(self, name: SSAName) -> LatticeValue:
        return self.values.get(name, TOP)

    def _lookup_for(self, uses: Dict[str, SSAName]):
        return lambda var: self._value(uses[var])

    def return_value(self) -> LatticeValue:
        contributions: List[LatticeValue] = []
        for block_id in self.reached_blocks:
            term = self._cfg.blocks[block_id].terminator
            if not isinstance(term, Ret):
                continue
            if term.expr is None:
                contributions.append(BOTTOM)
            else:
                assert term.uses is not None
                contributions.append(
                    evaluate_expr(term.expr, self._lookup_for(term.uses))
                )
        return meet_all(contributions)

    def exit_values(self, record_vars: Set[str]) -> Dict[str, LatticeValue]:
        """Meet of each variable's reaching value over executable returns.

        A variable whose value is the same constant at every executable
        return point has that constant as its *exit value* — the quantity
        the Section 3.2 extension propagates back to call sites.  TOP (no
        executable return: the procedure never returns) demotes to BOTTOM.
        """
        values: Dict[str, LatticeValue] = {var: TOP for var in record_vars}
        for block_id in self.reached_blocks:
            term = self._cfg.blocks[block_id].terminator
            if not isinstance(term, Ret) or term.reaching is None:
                continue
            for var in record_vars:
                name = term.reaching.get(var)
                if name is None:
                    values[var] = BOTTOM
                    continue
                values[var] = meet(values[var], self._value(name))
        return {
            var: (BOTTOM if value.is_top else value)
            for var, value in values.items()
        }

    def collect_call_sites(self) -> Dict[Tuple[str, int], CallSiteValues]:
        result: Dict[Tuple[str, int], CallSiteValues] = {}
        for block in self._cfg.blocks:
            for instr in block.instrs:
                if not isinstance(instr, CallInstr):
                    continue
                executable = block.id in self.reached_blocks
                if executable:
                    assert instr.uses is not None
                    lookup = self._lookup_for(instr.uses)
                    arg_values = [evaluate_expr(arg, lookup) for arg in instr.args]
                    global_values = {
                        g: self._value(name)
                        for g, name in (instr.reaching_globals or {}).items()
                        if g in self._effects.recorded_globals(instr.site)
                    }
                else:
                    arg_values = [TOP for _ in instr.args]
                    global_values = {}
                result[site_key(instr.site)] = CallSiteValues(
                    site=instr.site,
                    executable=executable,
                    arg_values=arg_values,
                    global_values=global_values,
                )
        return result
