"""The flat, slot-indexed core of the SCC engine (``engine_backend="flat"``).

The graph backend in :mod:`repro.analysis.scc` walks the object-graph IR
directly: every worklist step chases ``SSAName`` dict lookups, per-node
``isinstance`` dispatch, and fresh closure allocations.  This module lowers
a procedure **once** into a :class:`FlatSkeleton` — SSA names and CFG edges
numbered densely, phi operands / instruction defs / use lists flattened
into preallocated tuples of ints, expressions compiled to closures over a
single lattice-cell list — and then runs the fixpoint as tight loops over
those arrays.  The skeleton is cached per procedure (keyed by the call
effects it was specialized against), so repeated solves of the same
procedure — warm pipelines, FI return-fixpoint rounds, value-context
tabulation — skip CFG/SSA construction entirely and pay only the solve.

**Byte-identity contract.**  The flat solve mirrors the graph solver's
scheduling decision-for-decision: the same worklist discipline, the same
visit counters, the same first-change insertion order for the values
table, and the same insertion sequences for the reached-block and
executable-edge sets (so even set iteration order matches).  After the
fixpoint it reconstructs the graph solver's state and answers every
post-fixpoint query with the shared code in
:mod:`repro.analysis.queries`.  ``graph`` stays the oracle; ``flat`` must
be indistinguishable from it in everything but wall-clock time.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.analysis.base import CallEffects, entry_value
from repro.analysis.queries import SolverQueries
from repro.ir.builder import CFGBuildResult, build_cfg
from repro.ir.cfg import (
    ArrayStoreInstr,
    AssignInstr,
    Branch,
    CallInstr,
    Jump,
    PrintInstr,
    Ret,
)
from repro.ir.eval import abstract_binary, abstract_unary
from repro.ir.lattice import BOTTOM, TOP, Const, LatticeValue, meet, values_equal
from repro.ir.ssa import SSAFunction, SSAName, build_ssa
from repro.lang import ast
from repro.lang.symbols import ProcedureSymbols

Edge = Tuple[Optional[int], int]

#: Instruction op tags (first element of the lowered op tuples).
_OP_ASSIGN = 0
_OP_ARRAY = 1
_OP_CALL = 2
_OP_NOP = 3  # PrintInstr: referenced from use lists, no dataflow effect

#: Terminator op tags.
_T_JUMP = 0
_T_BRANCH = 1
_T_RET = 2

#: Use-list kind codes (mirror the graph's "phi"/"instr"/"term" strings).
_USE_PHI = 0
_USE_INSTR = 1
_USE_TERM = 2


def skeleton_key(
    proc: ast.Procedure,
    symbols: ProcedureSymbols,
    effects: CallEffects,
    record_exit_vars: Optional[Set[str]],
) -> Tuple:
    """Everything the lowered skeleton was specialized against.

    ``build_ssa`` consumes the effects oracle only through three signatures
    — per-site modified variables, per-site recorded globals, and alias
    partners per assigned variable — plus the exit-record set.  Two
    ``analyze`` calls with equal keys therefore produce structurally
    identical CFG/SSA forms, so the lowered skeleton can be reused; the
    *values* the oracle returns at solve time (call returns, exit values)
    are read dynamically and deliberately not part of the key.
    """
    sites_sig = tuple(
        (
            tuple(sorted(effects.modified_vars(site))),
            tuple(sorted(effects.recorded_globals(site))),
        )
        for site in symbols.call_sites
    )
    # symbols.assigned covers every Assign/ArrayStore/CallAssign target —
    # exactly the variables build_ssa queries alias partners for.
    extras_sig = tuple(
        (target, tuple(sorted(effects.assign_extra_defs(proc.name, target))))
        for target in sorted(symbols.assigned)
    )
    return (frozenset(record_exit_vars or ()), sites_sig, extras_sig)


class FlatOutcome(SolverQueries):
    """Solved state reconstructed in the graph solver's exact shape."""

    def __init__(
        self,
        cfg,
        effects: CallEffects,
        values: Dict[SSAName, LatticeValue],
        reached_blocks: Set[int],
        executable_edges: Set[Edge],
        flow_edge_visits: int,
        ssa_name_visits: int,
    ):
        self._cfg = cfg
        self._effects = effects
        self.values = values
        self.reached_blocks = reached_blocks
        self.executable_edges = executable_edges
        self.flow_edge_visits = flow_edge_visits
        self.ssa_name_visits = ssa_name_visits


class FlatSkeleton:
    """One procedure lowered to dense slots, reusable across solves.

    Slot layout: every SSA name gets a dense index into ``_cells`` (the
    single lattice-cell list all compiled expressions read); entry
    definitions occupy the first slots in ``entry_defs`` order so the
    reconstructed values table seeds exactly like the graph solver's.
    CFG edges (plus the synthetic entry edge) get dense ids into
    executability flags.  Per block: phi ops ``(target_slot, ((edge_id,
    src_slot), ...))``, instruction ops (tagged tuples over slots), and one
    terminator op.  Per slot: the use list, mirroring ``ssa.uses_of``
    entry-for-entry.

    A skeleton is **not** reentrant — compiled expressions read the shared
    cell list — so callers must hold :attr:`lock` around :meth:`solve`.
    """

    def __init__(
        self,
        proc: ast.Procedure,
        symbols: ProcedureSymbols,
        effects: CallEffects,
        record_exit_vars: Optional[Set[str]],
    ):
        self.proc_name = proc.name
        self.lock = threading.Lock()
        record_globals: Set[str] = set()
        self.build: CFGBuildResult = build_cfg(proc, symbols)
        cfg = self.build.cfg
        for instr in cfg.call_instrs():
            record_globals.update(effects.recorded_globals(instr.site))
        self.ssa: SSAFunction = build_ssa(
            cfg,
            call_defs=lambda instr: effects.modified_vars(instr.site),
            record_globals=record_globals,
            assign_extra_defs=lambda target: effects.assign_extra_defs(
                proc.name, target
            ),
            record_at_returns=record_exit_vars,
        )
        self._cfg = cfg
        self._lower()

    # ------------------------------------------------------------------
    # Lowering.
    # ------------------------------------------------------------------

    def _lower(self) -> None:
        ssa = self.ssa
        cfg = self._cfg

        names: List[SSAName] = []
        slot_of: Dict[SSAName, int] = {}

        def slot(name: SSAName) -> int:
            index = slot_of.get(name)
            if index is None:
                index = len(names)
                slot_of[name] = index
                names.append(name)
            return index

        # Entry definitions claim the first slots, in entry_defs order —
        # the order the graph solver seeds its values dict in.
        self._entry_slots: List[Tuple[int, str]] = [
            (slot(name), var) for var, name in ssa.entry_defs.items()
        ]

        edge_list: List[Edge] = []
        edge_dest: List[int] = []
        edge_ids: Dict[Edge, int] = {}

        def edge_id(edge: Edge) -> int:
            index = edge_ids.get(edge)
            if index is None:
                index = len(edge_list)
                edge_ids[edge] = index
                edge_list.append(edge)
                edge_dest.append(edge[1])
            return index

        self._entry_eid = edge_id((None, cfg.entry_id))

        n_blocks = len(cfg.blocks)
        block_phis: List[Tuple] = [() for _ in range(n_blocks)]
        block_instrs: List[Tuple] = [() for _ in range(n_blocks)]
        term_ops: List[Tuple] = [(_T_RET,) for _ in range(n_blocks)]
        op_of: Dict[int, Tuple] = {}  # id(instr/phi) -> lowered op

        # Cells are allocated before expression compilation: the compiled
        # closures capture this exact list and read it on every solve.
        cells: List[LatticeValue] = []
        self._cells = cells

        def compile_expr(expr: ast.Expr, uses: Dict[str, SSAName]):
            """Compile ``expr`` to a zero-arg closure over ``cells``.

            Returns ``(fn, has_var)``; a variable-free expression is
            evaluated once at lowering time (its value can never change).
            """
            if isinstance(expr, ast.IntLit) or isinstance(expr, ast.FloatLit):
                constant = Const(expr.value)
                return (lambda: constant), False
            if isinstance(expr, ast.Var):
                index = slot(uses[expr.name])
                return (lambda: cells[index]), True
            if isinstance(expr, ast.Index):
                return (lambda: BOTTOM), False
            if isinstance(expr, ast.Unary):
                operand, has_var = compile_expr(expr.operand, uses)
                op = expr.op
                fn = lambda: abstract_unary(op, operand())  # noqa: E731
                if not has_var:
                    folded = fn()
                    return (lambda: folded), False
                return fn, True
            if isinstance(expr, ast.Binary):
                left, left_var = compile_expr(expr.left, uses)
                right, right_var = compile_expr(expr.right, uses)
                op = expr.op
                fn = lambda: abstract_binary(op, left(), right())  # noqa: E731
                if not (left_var or right_var):
                    folded = fn()
                    return (lambda: folded), False
                return fn, True
            raise TypeError(f"unknown expression node: {expr!r}")

        for block_id in ssa.dom.rpo:
            block = cfg.blocks[block_id]

            phi_ops: List[Tuple] = []
            for phi in ssa.phis[block_id]:
                op = (
                    slot(phi.target),
                    tuple(
                        (edge_id((pred_id, block_id)), slot(arg_name))
                        for pred_id, arg_name in phi.args.items()
                    ),
                )
                op_of[id(phi)] = op
                phi_ops.append(op)
            block_phis[block_id] = tuple(phi_ops)

            instr_ops: List[Tuple] = []
            for instr in block.instrs:
                if isinstance(instr, AssignInstr):
                    fn, _ = compile_expr(instr.expr, instr.uses)
                    op = (
                        _OP_ASSIGN,
                        fn,
                        tuple(
                            (slot(name), var == instr.target)
                            for var, name in instr.defs.items()
                        ),
                    )
                elif isinstance(instr, ArrayStoreInstr):
                    op = (
                        _OP_ARRAY,
                        tuple(slot(name) for name in instr.defs.values()),
                    )
                elif isinstance(instr, CallInstr):
                    op = (
                        _OP_CALL,
                        instr.site,
                        tuple(
                            (
                                slot(name),
                                var,
                                instr.target is not None
                                and var == instr.target,
                            )
                            for var, name in instr.defs.items()
                        ),
                    )
                else:  # PrintInstr: no dataflow effect
                    op_of[id(instr)] = (_OP_NOP,)
                    continue
                op_of[id(instr)] = op
                instr_ops.append(op)
            block_instrs[block_id] = tuple(instr_ops)

            term = block.terminator
            if isinstance(term, Jump):
                term_ops[block_id] = (_T_JUMP, edge_id((block_id, term.target)))
            elif isinstance(term, Branch):
                fn, _ = compile_expr(term.cond, term.uses)
                term_ops[block_id] = (
                    _T_BRANCH,
                    fn,
                    edge_id((block_id, term.true_target)),
                    edge_id((block_id, term.false_target)),
                )
            # Ret (or no terminator) keeps the (_T_RET,) default.

        uses: List[Tuple] = [() for _ in names]
        for name, refs in ssa.uses_of.items():
            lowered = []
            for kind, block_id, node in refs:
                if kind == "phi":
                    lowered.append((_USE_PHI, block_id, op_of[id(node)]))
                elif kind == "instr":
                    lowered.append((_USE_INSTR, block_id, op_of[id(node)]))
                else:
                    lowered.append((_USE_TERM, block_id, None))
            index = slot_of.get(name)
            if index is None:
                continue  # defensive: a use of a name that was never defined
            uses[index] = tuple(lowered)

        self._names = names
        self._uses = tuple(uses)
        self._edge_list = edge_list
        self._edge_dest = edge_dest
        self._block_phis = block_phis
        self._block_instrs = block_instrs
        self._term_ops = term_ops
        self._n_slots = len(names)
        self._n_edges = len(edge_list)
        self._n_blocks = n_blocks
        self._top_row = [TOP] * len(names)
        cells.extend(self._top_row)

    # ------------------------------------------------------------------
    # Solving.
    # ------------------------------------------------------------------

    def solve(
        self,
        symbols: ProcedureSymbols,
        entry_env: Dict[str, LatticeValue],
        effects: CallEffects,
        optimistic_uninitialized: bool,
    ) -> FlatOutcome:
        """Run the SCC fixpoint over the skeleton's arrays.

        Caller must hold :attr:`lock` (the cell list is shared state).
        """
        cells = self._cells
        cells[:] = self._top_row
        materialized = bytearray(self._n_slots)
        order: List[int] = []
        for index, var in self._entry_slots:
            cells[index] = entry_value(
                entry_env, symbols, var, optimistic_uninitialized
            )
            materialized[index] = 1
            order.append(index)

        executable = bytearray(self._n_edges)
        exec_order: List[int] = []
        reached = bytearray(self._n_blocks)
        reached_order: List[int] = []
        flow: List[int] = [self._entry_eid]
        ssa_work: List[int] = []
        flow_visits = 0
        ssa_visits = 0

        edge_dest = self._edge_dest
        block_phis = self._block_phis
        block_instrs = self._block_instrs
        term_ops = self._term_ops
        uses = self._uses

        def set_slot(index: int, new: LatticeValue) -> None:
            # Inlined meet + first-change bookkeeping: equivalent to the
            # graph solver's `merged = meet(old, new); if merged != old`.
            old = cells[index]
            old_tag = old.tag
            if old_tag == 2:  # BOTTOM cannot lower further
                return
            new_tag = new.tag
            if new_tag == 0:  # meeting with TOP never changes anything
                return
            if old_tag == 0:
                merged = new
            elif new_tag == 1 and values_equal(old.value, new.value):
                return
            else:
                merged = BOTTOM
            cells[index] = merged
            if not materialized[index]:
                materialized[index] = 1
                order.append(index)
            ssa_work.append(index)

        def visit_phi(op: Tuple) -> None:
            target, args = op
            value = TOP
            for eid, src in args:
                if executable[eid]:
                    value = meet(value, cells[src])
            set_slot(target, value)

        def visit_instr(op: Tuple) -> None:
            tag = op[0]
            if tag == _OP_ASSIGN:
                result = op[1]()
                for index, is_target in op[2]:
                    set_slot(index, result if is_target else BOTTOM)
            elif tag == _OP_ARRAY:
                for index in op[1]:
                    set_slot(index, BOTTOM)
            elif tag == _OP_CALL:
                site = op[1]
                for index, var, is_target in op[2]:
                    if is_target:
                        set_slot(index, effects.return_value(site))
                    else:
                        set_slot(index, effects.modified_value(site, var))
            # _OP_NOP: no dataflow effect

        def visit_term(block_id: int) -> None:
            op = term_ops[block_id]
            tag = op[0]
            if tag == _T_JUMP:
                flow.append(op[1])
            elif tag == _T_BRANCH:
                cond = op[1]()
                cond_tag = cond.tag
                if cond_tag == 1:
                    flow.append(op[2] if cond.value != 0 else op[3])
                elif cond_tag == 2:
                    flow.append(op[2])
                    flow.append(op[3])
                # TOP: neither branch is executable yet

        flow_head = 0
        ssa_head = 0
        while flow_head < len(flow) or ssa_head < len(ssa_work):
            while flow_head < len(flow):
                eid = flow[flow_head]
                flow_head += 1
                flow_visits += 1
                if executable[eid]:
                    continue
                executable[eid] = 1
                exec_order.append(eid)
                dest = edge_dest[eid]
                for op in block_phis[dest]:
                    visit_phi(op)
                if reached[dest]:
                    continue
                reached[dest] = 1
                reached_order.append(dest)
                for op in block_instrs[dest]:
                    visit_instr(op)
                visit_term(dest)
            while ssa_head < len(ssa_work):
                index = ssa_work[ssa_head]
                ssa_head += 1
                ssa_visits += 1
                for kind, block_id, op in uses[index]:
                    if not reached[block_id]:
                        continue
                    if kind == _USE_PHI:
                        visit_phi(op)
                    elif kind == _USE_INSTR:
                        visit_instr(op)
                    else:
                        visit_term(block_id)

        # Reconstruct the graph solver's state: same keys, same values,
        # same insertion order everywhere (dict order and set order both).
        names = self._names
        values: Dict[SSAName, LatticeValue] = {}
        for index in order:
            values[names[index]] = cells[index]
        reached_blocks: Set[int] = set()
        for block_id in reached_order:
            reached_blocks.add(block_id)
        edge_list = self._edge_list
        executable_edges: Set[Edge] = set()
        for eid in exec_order:
            executable_edges.add(edge_list[eid])
        return FlatOutcome(
            self._cfg,
            effects,
            values,
            reached_blocks,
            executable_edges,
            flow_visits,
            ssa_visits,
        )


def _release_noop() -> None:
    return None


class SkeletonCache:
    """Per-engine cache of lowered skeletons, keyed by procedure identity.

    The outer map is keyed by ``id(proc)`` while holding a strong reference
    to the procedure (so the id can never be recycled underneath us); the
    inner map is keyed by :func:`skeleton_key`.  :meth:`acquire` returns a
    ``(skeleton, release)`` pair with the skeleton's lock held — a cached
    skeleton that is busy in another thread is *not* waited on; the caller
    gets a private, uncached skeleton instead, so concurrency degrades to
    the cold path rather than serializing.
    """

    #: Cached procedures before the oldest half is evicted.  The bound
    #: must comfortably exceed one batched bench-suite run (~600 procs):
    #: an engine that overflows mid-batch re-lowers every procedure on
    #: every warm rerun, which is exactly the cost the cache exists to
    #: amortize.  Eviction is FIFO (insertion order) and drops half at a
    #: time so a workload sitting at the boundary doesn't thrash.
    max_procs = 4096
    #: Distinct effect-signature skeletons retained per procedure.
    max_variants = 8

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._procs: Dict[int, Tuple[ast.Procedure, Dict[Tuple, FlatSkeleton]]] = {}

    def acquire(
        self,
        proc: ast.Procedure,
        symbols: ProcedureSymbols,
        effects: CallEffects,
        record_exit_vars: Optional[Set[str]],
    ) -> Tuple[FlatSkeleton, Callable[[], None], bool]:
        """Return ``(skeleton, release, cache_hit)`` with the lock held."""
        key = skeleton_key(proc, symbols, effects, record_exit_vars)
        proc_id = id(proc)
        with self._lock:
            entry = self._procs.get(proc_id)
            skeleton = entry[1].get(key) if entry is not None else None
        if skeleton is not None:
            if skeleton.lock.acquire(False):
                return skeleton, skeleton.lock.release, True
            # Busy in another thread: solve on a private skeleton.
            private = FlatSkeleton(proc, symbols, effects, record_exit_vars)
            return private, _release_noop, False
        skeleton = FlatSkeleton(proc, symbols, effects, record_exit_vars)
        skeleton.lock.acquire()
        with self._lock:
            if len(self._procs) >= self.max_procs:
                for stale_id in list(self._procs)[: self.max_procs // 2]:
                    del self._procs[stale_id]
            entry = self._procs.get(proc_id)
            if entry is None:
                entry = (proc, {})
                self._procs[proc_id] = entry
            variants = entry[1]
            if key not in variants:
                if len(variants) >= self.max_variants:
                    variants.clear()
                variants[key] = skeleton
        return skeleton, skeleton.lock.release, False
