"""The backward-walk transformation: materialize constants in the program.

This is the second half of the paper's interprocedural constant propagation
("the transformation of a program representation to reflect these constants",
Section 2): each procedure is re-analyzed intraprocedurally with its
interprocedural entry constants, constant uses are substituted, constant
expressions folded, and branches decided by constants pruned.

The number of *substitutions* (variable uses replaced by a constant) is the
metric of the paper's Table 5 (following Grove & Torczon / Metzger & Stroud).

By-reference safety: a bare-variable argument that the callee may modify is
never replaced by a literal — doing so would silently switch the binding from
by-reference to by-value.  Semantic preservation is property-tested against
the reference interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.base import CallEffects
from repro.analysis.scc import SCCDetail, SCCEngine
from repro.ir.cfg import Branch, CallInstr
from repro.ir.eval import EvalError, apply_binary, apply_unary, evaluate_expr
from repro.ir.lattice import TOP, LatticeValue
from repro.lang import ast
from repro.lang.symbols import ProcedureSymbols


@dataclass
class TransformResult:
    """A transformed program plus per-procedure counters."""

    program: ast.Program
    substitutions: Dict[str, int] = field(default_factory=dict)
    folds: Dict[str, int] = field(default_factory=dict)
    pruned_branches: Dict[str, int] = field(default_factory=dict)

    @property
    def total_substitutions(self) -> int:
        return sum(self.substitutions.values())

    @property
    def total_folds(self) -> int:
        return sum(self.folds.values())

    @property
    def total_pruned(self) -> int:
        return sum(self.pruned_branches.values())


def transform_program(
    program: ast.Program,
    symbols: Dict[str, ProcedureSymbols],
    entry_envs: Dict[str, Dict[str, LatticeValue]],
    effects: CallEffects,
    *,
    prune_dead_branches: bool = True,
    fold_constants: bool = True,
    insert_entry_assignments: bool = False,
    engine: Optional[SCCEngine] = None,
) -> TransformResult:
    """Substitute, fold, and prune every procedure of ``program``.

    :param entry_envs: per-procedure entry lattice environment, as produced by
        an interprocedural constant propagation method (may be empty — then
        only intraprocedurally evident constants are materialized).
    """
    engine = engine or SCCEngine()
    result = TransformResult(program=program)
    new_procs: List[ast.Procedure] = []
    for proc in program.procedures:
        transformer = _ProcTransformer(
            proc,
            symbols[proc.name],
            entry_envs.get(proc.name, {}),
            effects,
            engine,
            prune=prune_dead_branches,
            fold=fold_constants,
        )
        new_body = transformer.run()
        if insert_entry_assignments:
            new_body = _with_entry_assignments(
                new_body, entry_envs.get(proc.name, {}), symbols[proc.name]
            )
        new_procs.append(ast.Procedure(proc.name, list(proc.formals), new_body, proc.pos))
        result.substitutions[proc.name] = transformer.substitutions
        result.folds[proc.name] = transformer.folds
        result.pruned_branches[proc.name] = transformer.pruned
    result.program = ast.Program(
        list(program.global_names),
        [ast.GlobalInit(e.name, e.value, e.pos) for e in program.inits],
        new_procs,
    )
    return result


def constant_to_expr(value) -> ast.Expr:
    """Build the AST literal for a constant value (sign-wrapped if negative)."""
    if isinstance(value, float):
        if value < 0 or (value == 0.0 and str(value).startswith("-")):
            return ast.Unary("-", ast.FloatLit(-value))
        return ast.FloatLit(value)
    if value < 0:
        return ast.Unary("-", ast.IntLit(-value))
    return ast.IntLit(value)


def _with_entry_assignments(
    body: ast.Block,
    entry_env: Dict[str, LatticeValue],
    symbols: ProcedureSymbols,
) -> ast.Block:
    """Prepend ``v = c;`` for each referenced entry constant (paper Section 3).

    The paper's propagation "is equivalent to adding an assignment statement
    for each constant variable at the beginning of the procedure ... only for
    those variables that are referenced in that procedure."
    """
    prefix: List[ast.Stmt] = []
    for var in sorted(entry_env):
        value = entry_env[var]
        if value.is_const and var in symbols.referenced:
            prefix.append(ast.Assign(var, constant_to_expr(value.const_value)))
    if not prefix:
        return body
    return ast.Block(prefix + list(body.stmts), body.pos)


class _ProcTransformer:
    def __init__(
        self,
        proc: ast.Procedure,
        symbols: ProcedureSymbols,
        entry_env: Dict[str, LatticeValue],
        effects: CallEffects,
        engine: SCCEngine,
        *,
        prune: bool,
        fold: bool,
    ):
        self._proc = proc
        self._effects = effects
        self._prune = prune
        self._fold = fold
        self.substitutions = 0
        self.folds = 0
        self.pruned = 0

        intra = engine.analyze(proc, symbols, entry_env, effects)
        detail = intra.detail
        if not isinstance(detail, SCCDetail):
            raise TypeError("transform_program requires the SCC engine")
        self._detail = detail
        self._instr_of_stmt = detail.build.instr_of_stmt
        self._values = detail.values
        self._reached = detail.reached_blocks
        self._block_of_instr: Dict[int, int] = {}
        for block in detail.build.cfg.blocks:
            for instr in block.instrs:
                self._block_of_instr[id(instr)] = block.id
            if block.terminator is not None:
                self._block_of_instr[id(block.terminator)] = block.id

    # ------------------------------------------------------------------

    def run(self) -> ast.Block:
        return self._rebuild_block(self._proc.body)

    def _rebuild_block(self, block: ast.Block) -> ast.Block:
        stmts: List[ast.Stmt] = []
        for stmt in block.stmts:
            stmts.extend(self._rebuild_stmt(stmt))
        return ast.Block(stmts, block.pos)

    def _rebuild_stmt(self, stmt: ast.Stmt) -> List[ast.Stmt]:
        if isinstance(stmt, ast.Block):
            return [self._rebuild_block(stmt)]
        if isinstance(stmt, ast.Assign):
            node = self._node_for(stmt)
            expr = self._substitute(stmt.expr, node)
            return [ast.Assign(stmt.target, expr, stmt.pos)]
        if isinstance(stmt, ast.AssignIndex):
            node = self._node_for(stmt)
            index = self._substitute(stmt.index, node)
            expr = self._substitute(stmt.expr, node)
            return [ast.AssignIndex(stmt.target, index, expr, stmt.pos)]
        if isinstance(stmt, ast.CallStmt):
            node = self._node_for(stmt)
            args = self._rebuild_args(stmt.args, node)
            return [ast.CallStmt(stmt.callee, args, stmt.pos)]
        if isinstance(stmt, ast.CallAssign):
            node = self._node_for(stmt)
            args = self._rebuild_args(stmt.args, node)
            return [ast.CallAssign(stmt.target, stmt.callee, args, stmt.pos)]
        if isinstance(stmt, ast.Print):
            node = self._node_for(stmt)
            return [ast.Print(self._substitute(stmt.expr, node), stmt.pos)]
        if isinstance(stmt, ast.Return):
            node = self._node_for(stmt)
            if stmt.expr is None:
                return [ast.Return(None, stmt.pos)]
            return [ast.Return(self._substitute(stmt.expr, node), stmt.pos)]
        if isinstance(stmt, ast.If):
            return self._rebuild_if(stmt)
        if isinstance(stmt, ast.While):
            return self._rebuild_while(stmt)
        raise TypeError(f"unknown statement node: {stmt!r}")

    def _rebuild_if(self, stmt: ast.If) -> List[ast.Stmt]:
        branch = self._node_for(stmt)
        cond_value = self._branch_value(branch)
        if self._prune and cond_value is not None and cond_value.is_const:
            self.pruned += 1
            if cond_value.const_value != 0:
                return list(self._rebuild_block(stmt.then_block).stmts)
            if stmt.else_block is not None:
                return list(self._rebuild_block(stmt.else_block).stmts)
            return []
        cond = self._substitute(stmt.cond, branch)
        then_block = self._rebuild_block(stmt.then_block)
        else_block = (
            self._rebuild_block(stmt.else_block)
            if stmt.else_block is not None
            else None
        )
        return [ast.If(cond, then_block, else_block, stmt.pos)]

    def _rebuild_while(self, stmt: ast.While) -> List[ast.Stmt]:
        branch = self._node_for(stmt)
        cond_value = self._branch_value(branch)
        if (
            self._prune
            and cond_value is not None
            and cond_value.is_const
            and cond_value.const_value == 0
        ):
            # The loop guard is false on first evaluation; the body never runs.
            self.pruned += 1
            return []
        cond = self._substitute(stmt.cond, branch)
        return [ast.While(cond, self._rebuild_block(stmt.body), stmt.pos)]

    # ------------------------------------------------------------------

    def _node_for(self, stmt: ast.Stmt):
        return self._instr_of_stmt.get(id(stmt))

    def _is_executed(self, node) -> bool:
        if node is None or node.uses is None:
            return False
        return self._block_of_instr.get(id(node)) in self._reached

    def _branch_value(self, branch) -> Optional[LatticeValue]:
        """Lattice value of a Branch condition, or None if never executed."""
        if not isinstance(branch, Branch) or not self._is_executed(branch):
            return None
        return evaluate_expr(branch.cond, self._safe_lookup(branch.uses))

    def _safe_lookup(self, uses):
        def lookup(var: str) -> LatticeValue:
            name = uses.get(var)
            if name is None:
                return TOP
            return self._values.get(name, TOP)

        return lookup

    def _rebuild_args(self, args: List[ast.Expr], node) -> List[ast.Expr]:
        if not isinstance(node, CallInstr) or not self._is_executed(node):
            return list(args)
        modified = self._effects.modified_vars(node.site)
        rebuilt: List[ast.Expr] = []
        for arg in args:
            if isinstance(arg, ast.Var) and arg.name in modified:
                # By-reference argument the callee may write: must stay a
                # variable, or the store target would vanish.
                rebuilt.append(arg)
            else:
                rebuilt.append(self._substitute(arg, node))
        return rebuilt

    def _substitute(self, expr: ast.Expr, node) -> ast.Expr:
        if node is None or node.uses is None or not self._is_executed(node):
            return expr
        new_expr = self._subst_expr(expr, node.uses)
        if self._fold:
            new_expr = self._fold_expr(new_expr)
        return new_expr

    def _subst_expr(self, expr: ast.Expr, uses) -> ast.Expr:
        if isinstance(expr, ast.Var):
            name = uses.get(expr.name)
            if name is None:
                return expr
            value = self._values.get(name)
            if value is not None and value.is_const:
                self.substitutions += 1
                return constant_to_expr(value.const_value)
            return expr
        if isinstance(expr, ast.Unary):
            return ast.Unary(expr.op, self._subst_expr(expr.operand, uses), expr.pos)
        if isinstance(expr, ast.Binary):
            return ast.Binary(
                expr.op,
                self._subst_expr(expr.left, uses),
                self._subst_expr(expr.right, uses),
                expr.pos,
            )
        if isinstance(expr, ast.Index):
            # The element value is never constant; the index may be.
            return ast.Index(expr.name, self._subst_expr(expr.index, uses), expr.pos)
        return expr

    def _fold_expr(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Unary):
            operand = self._fold_expr(expr.operand)
            value = ast.literal_value(operand)
            # Do not fold unary minus over a bare literal: `-5` is already
            # in simplest form (and re-folding would loop on negatives).
            if value is not None and expr.op == "not":
                self.folds += 1
                return constant_to_expr(apply_unary("not", value))
            return ast.Unary(expr.op, operand, expr.pos)
        if isinstance(expr, ast.Binary):
            left = self._fold_expr(expr.left)
            right = self._fold_expr(expr.right)
            lval = ast.literal_value(left)
            rval = ast.literal_value(right)
            if lval is not None and rval is not None:
                try:
                    folded = apply_binary(expr.op, lval, rval)
                except EvalError:
                    return ast.Binary(expr.op, left, right, expr.pos)
                self.folds += 1
                return constant_to_expr(folded)
            return ast.Binary(expr.op, left, right, expr.pos)
        if isinstance(expr, ast.Index):
            return ast.Index(expr.name, self._fold_expr(expr.index), expr.pos)
        return expr
