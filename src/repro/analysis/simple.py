"""A plain iterative (Kildall-style) constant propagator.

Flow-sensitive but *not* conditional: every CFG edge is assumed executable, so
no unreachable code is discarded.  Exists for two reasons:

1. Differential testing — SCC must find a superset of the constants this
   engine finds (asserted by property tests).
2. The paper notes its flow-sensitive ICP can use *any* flow-sensitive
   intraprocedural method; plugging this engine into the ICP gives the
   ablation measured in ``benchmarks/bench_engine_ablation.py``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.base import (
    CallEffects,
    CallSiteValues,
    IntraEngine,
    IntraResult,
    entry_value,
    site_key,
)
from repro.ir.builder import build_cfg
from repro.ir.cfg import ArrayStoreInstr, AssignInstr, CallInstr, Ret
from repro.ir.eval import evaluate_expr
from repro.ir.lattice import BOTTOM, TOP, LatticeValue, meet_all
from repro.ir.ssa import instr_use_vars
from repro.lang.symbols import ProcedureSymbols

Env = Dict[str, LatticeValue]


class SimpleEngine(IntraEngine):
    """Dense iterative constant propagation without branch pruning."""

    name = "simple"

    def __init__(self, optimistic_uninitialized: bool = False):
        self._optimistic_uninitialized = optimistic_uninitialized

    def analyze(
        self,
        proc: ast.Procedure,
        symbols: ProcedureSymbols,
        entry_env: Dict[str, LatticeValue],
        effects: CallEffects,
        record_exit_vars=None,
    ) -> IntraResult:
        # record_exit_vars is accepted for interface parity; the dense
        # engine does not provide exit values (callers fall back to BOTTOM).
        build = build_cfg(proc, symbols)
        cfg = build.cfg

        variables = set()
        for block in cfg.blocks:
            for instr in block.instrs:
                variables.update(instr_use_vars(instr))
                if isinstance(instr, (AssignInstr, ArrayStoreInstr)):
                    variables.add(instr.target)
                elif isinstance(instr, CallInstr):
                    if instr.target is not None:
                        variables.add(instr.target)
                    variables.update(effects.modified_vars(instr.site))
                    variables.update(effects.recorded_globals(instr.site))
            if block.terminator is not None:
                variables.update(instr_use_vars(block.terminator))

        entry_in: Env = {
            var: entry_value(
                entry_env, symbols, var, self._optimistic_uninitialized
            )
            for var in variables
        }

        rpo = cfg.reachable_ids()
        reachable = set(rpo)
        in_envs: Dict[int, Env] = {b: {v: TOP for v in variables} for b in rpo}
        in_envs[cfg.entry_id] = dict(entry_in)

        changed = True
        while changed:
            changed = False
            for block_id in rpo:
                if block_id != cfg.entry_id:
                    preds = [
                        p for p in cfg.blocks[block_id].preds if p in reachable
                    ]
                    new_in = {
                        var: meet_all(
                            self._out_env(cfg, p, in_envs[p], effects, proc.name)[var]
                            for p in preds
                        )
                        for var in variables
                    } if preds else in_envs[block_id]
                    if new_in != in_envs[block_id]:
                        in_envs[block_id] = new_in
                        changed = True

        call_sites: Dict[Tuple[str, int], CallSiteValues] = {}
        return_contributions: List[LatticeValue] = []
        for block_id in rpo:
            env = dict(in_envs[block_id])
            block = cfg.blocks[block_id]
            for instr in block.instrs:
                if isinstance(instr, CallInstr):
                    lookup = lambda var: env.get(var, BOTTOM)  # noqa: E731
                    arg_values = [evaluate_expr(a, lookup) for a in instr.args]
                    global_values = {
                        g: env.get(g, BOTTOM)
                        for g in effects.recorded_globals(instr.site)
                    }
                    call_sites[site_key(instr.site)] = CallSiteValues(
                        site=instr.site,
                        executable=True,
                        arg_values=arg_values,
                        global_values=global_values,
                    )
                self._apply_instr(instr, env, effects, proc.name)
            term = block.terminator
            if isinstance(term, Ret):
                if term.expr is None:
                    return_contributions.append(BOTTOM)
                else:
                    lookup = lambda var: env.get(var, BOTTOM)  # noqa: E731
                    return_contributions.append(evaluate_expr(term.expr, lookup))

        # Call sites in unreachable-from-entry blocks (code after return).
        for instr in cfg.call_instrs():
            key = site_key(instr.site)
            if key not in call_sites:
                call_sites[key] = CallSiteValues(
                    site=instr.site,
                    executable=False,
                    arg_values=[TOP for _ in instr.args],
                    global_values={},
                )

        return IntraResult(
            proc_name=proc.name,
            engine=self.name,
            call_sites=call_sites,
            return_value=meet_all(return_contributions),
            detail=None,
        )

    # ------------------------------------------------------------------

    def _out_env(
        self, cfg, block_id: int, in_env: Env, effects: CallEffects, proc_name: str
    ) -> Env:
        env = dict(in_env)
        for instr in cfg.blocks[block_id].instrs:
            self._apply_instr(instr, env, effects, proc_name)
        return env

    @staticmethod
    def _apply_instr(instr, env: Env, effects: CallEffects, proc_name: str) -> None:
        if isinstance(instr, AssignInstr):
            lookup = lambda var: env.get(var, BOTTOM)  # noqa: E731
            result = evaluate_expr(instr.expr, lookup)
            env[instr.target] = result
            for partner in effects.assign_extra_defs(proc_name, instr.target):
                if partner != instr.target and partner in env:
                    env[partner] = BOTTOM
        elif isinstance(instr, ArrayStoreInstr):
            env[instr.target] = BOTTOM
            for partner in effects.assign_extra_defs(proc_name, instr.target):
                if partner != instr.target and partner in env:
                    env[partner] = BOTTOM
        elif isinstance(instr, CallInstr):
            for var in effects.modified_vars(instr.site):
                if var in env:
                    env[var] = BOTTOM
            if instr.target is not None:
                env[instr.target] = effects.return_value(instr.site)
                for partner in effects.assign_extra_defs(proc_name, instr.target):
                    if partner != instr.target and partner in env:
                        env[partner] = BOTTOM
