"""Shared interfaces for intraprocedural constant propagation engines.

The paper stresses that its flow-sensitive ICP "can use any flow-sensitive
intraprocedural constant propagation method"; this module defines the
engine-neutral contract.  An engine consumes a procedure, an *entry
environment* (lattice values for formals and globals at procedure entry), and
a :class:`CallEffects` oracle describing what each call site may do, and
produces an :class:`IntraResult`: the lattice value of every argument and
every relevant global at every call site, plus the procedure's return value.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.lattice import BOTTOM, TOP, LatticeValue
from repro.lang import ast
from repro.lang.symbols import CallSite, ProcedureSymbols

#: Program-wide call site key: (caller name, call site index).
SiteKey = Tuple[str, int]


def site_key(site: CallSite) -> SiteKey:
    return (site.caller, site.index)


@dataclass
class CallSiteValues:
    """Constant facts observed at one call site by an intraprocedural run."""

    site: CallSite
    #: False when the propagator proved the call site unreachable.
    executable: bool
    #: Lattice value of each argument expression at the call.
    arg_values: List[LatticeValue]
    #: Lattice value of each *recorded* global just before the call.
    global_values: Dict[str, LatticeValue]


class CallEffects(abc.ABC):
    """Oracle describing the interprocedural side effects of call sites.

    The flow-sensitive ICP instantiates this from MOD/REF/alias summaries;
    standalone intraprocedural runs use :class:`ConservativeEffects`.
    """

    @abc.abstractmethod
    def modified_vars(self, site: CallSite) -> Set[str]:
        """Caller variables the call may modify (excluding the result target)."""

    @abc.abstractmethod
    def recorded_globals(self, site: CallSite) -> Set[str]:
        """Globals whose value should be recorded at this call site."""

    def return_value(self, site: CallSite) -> LatticeValue:
        """Lattice value of the call's return (BOTTOM unless returns are propagated)."""
        return BOTTOM

    def modified_value(self, site: CallSite, var: str) -> LatticeValue:
        """Lattice value of a call-modified variable *after* the call.

        BOTTOM unless the exit-value extension supplies the callee's known
        constant exit value for the bound variable.
        """
        return BOTTOM

    def assign_extra_defs(self, proc: str, target: str) -> Set[str]:
        """Alias partners also (maybe) modified when ``target`` is assigned."""
        return set()


class ConservativeEffects(CallEffects):
    """Worst-case effects: every call may modify every global and every
    bare-variable argument, and may reference every global."""

    def __init__(self, global_names: Set[str]):
        self._globals = set(global_names)

    def modified_vars(self, site: CallSite) -> Set[str]:
        modified = set(self._globals)
        for arg in site.args:
            if isinstance(arg, ast.Var):
                modified.add(arg.name)
        return modified

    def recorded_globals(self, site: CallSite) -> Set[str]:
        return set(self._globals)


@dataclass
class IntraResult:
    """The outcome of one intraprocedural constant propagation run."""

    proc_name: str
    engine: str
    call_sites: Dict[SiteKey, CallSiteValues]
    return_value: LatticeValue
    #: Engine detail used by the transformation pass (SCC engine only).
    detail: Optional[object] = field(default=None, repr=False)
    #: Lattice value of each requested variable at procedure exit
    #: (meet over executable return points); None when not requested.
    exit_values: Optional[Dict[str, LatticeValue]] = None

    def site_values(self, site: CallSite) -> CallSiteValues:
        return self.call_sites[site_key(site)]


class IntraEngine(abc.ABC):
    """A flow-sensitive intraprocedural constant propagation method."""

    #: Short engine name used in configs and reports.
    name: str = "abstract"

    @abc.abstractmethod
    def analyze(
        self,
        proc: ast.Procedure,
        symbols: ProcedureSymbols,
        entry_env: Dict[str, LatticeValue],
        effects: CallEffects,
        record_exit_vars: Optional[Set[str]] = None,
    ) -> IntraResult:
        """Propagate constants through ``proc`` given entry values and effects.

        :param record_exit_vars: variables whose lattice value at procedure
            exit should be computed (the Section 3.2 exit-value extension);
            engines that cannot provide exit values may ignore this.
        """


def entry_value(
    entry_env: Dict[str, LatticeValue],
    symbols: ProcedureSymbols,
    var: str,
    optimistic_uninitialized: bool = False,
) -> LatticeValue:
    """Initial lattice value of ``var`` at procedure entry.

    Formals and globals default to BOTTOM when the caller supplied no fact;
    locals are uninitialized (BOTTOM by default; TOP when the optimistic
    treatment of uninitialized variables is requested).
    """
    if var in entry_env:
        return entry_env[var]
    if symbols.kind_of(var) == "local":
        return TOP if optimistic_uninitialized else BOTTOM
    return BOTTOM
