"""Wegman–Zadeck Sparse Conditional Constant propagation (TOPLAS 13(2), 1991).

This is the paper's default intraprocedural method (Section 3): an optimistic
SSA-based propagator that simultaneously discovers constants and unreachable
code.  Two worklists are maintained:

- a *flow* worklist of CFG edges whose executability was just established, and
- an *SSA* worklist of names whose lattice value just lowered.

Phi functions meet only over executable incoming edges; conditional branches
with a constant condition enable only the taken edge, so code that is dead
under the (interprocedurally supplied) entry constants contributes nothing —
this is exactly the mechanism that finds ``f2`` in the paper's Figure 1.

The engine has two interchangeable backends.  ``graph`` (the default, and
the oracle) solves directly over the object-graph IR below; ``flat``
(:mod:`repro.analysis.flat`) lowers the procedure into a slot-indexed
skeleton once, caches it, and runs the same fixpoint as tight loops over
preallocated arrays.  Both must produce byte-identical results — the
backend knob may only change wall-clock time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Deque, Dict, Optional, Set, Tuple

from repro.analysis.base import (
    CallEffects,
    IntraEngine,
    IntraResult,
    entry_value,
)
from repro.analysis.flat import SkeletonCache
from repro.analysis.phases import PHASES
from repro.analysis.queries import SolverQueries
from repro.ir.builder import CFGBuildResult, build_cfg
from repro.ir.cfg import ArrayStoreInstr, AssignInstr, Branch, CallInstr, Jump
from repro.ir.eval import evaluate_expr
from repro.ir.lattice import BOTTOM, TOP, LatticeValue, meet, meet_all
from repro.ir.ssa import PhiNode, SSAFunction, SSAName, build_ssa
from repro.lang import ast
from repro.lang.symbols import ProcedureSymbols

Edge = Tuple[Optional[int], int]  # (pred block id or None for entry, succ id)

#: Legal values of the engine's ``backend`` knob.
BACKENDS = ("graph", "flat")


@dataclass
class SCCDetail:
    """Engine internals exposed for the transformation pass and tests."""

    build: CFGBuildResult
    ssa: SSAFunction
    values: Dict[SSAName, LatticeValue]
    reached_blocks: Set[int]
    executable_edges: Set[Edge]
    #: Worklist visit counters of the solver run (flow edges processed,
    #: SSA names revisited, ...) — consumed by the observability layer.
    visits: Dict[str, int] = field(default_factory=dict)

    def value_of(self, name: SSAName) -> LatticeValue:
        return self.values.get(name, TOP)

    @property
    def ssa_size(self) -> int:
        """Number of SSA names the solver assigned a lattice cell."""
        return len(self.values)


class SCCEngine(IntraEngine):
    """The Sparse Conditional Constant engine."""

    name = "scc"

    def __init__(
        self,
        optimistic_uninitialized: bool = False,
        backend: str = "graph",
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        self._optimistic_uninitialized = optimistic_uninitialized
        self._backend = backend
        self._skeletons = SkeletonCache() if backend == "flat" else None

    @property
    def backend(self) -> str:
        return self._backend

    def analyze(
        self,
        proc: ast.Procedure,
        symbols: ProcedureSymbols,
        entry_env: Dict[str, LatticeValue],
        effects: CallEffects,
        record_exit_vars: Optional[Set[str]] = None,
    ) -> IntraResult:
        if self._backend == "flat":
            return self._analyze_flat(
                proc, symbols, entry_env, effects, record_exit_vars
            )
        timing = PHASES.enabled
        if timing:
            t0 = perf_counter()
        build = build_cfg(proc, symbols)
        cfg = build.cfg
        record_globals: Set[str] = set()
        for instr in cfg.call_instrs():
            record_globals.update(effects.recorded_globals(instr.site))
        ssa = build_ssa(
            cfg,
            call_defs=lambda instr: effects.modified_vars(instr.site),
            record_globals=record_globals,
            assign_extra_defs=lambda target: effects.assign_extra_defs(
                proc.name, target
            ),
            record_at_returns=record_exit_vars,
        )
        if timing:
            t1 = perf_counter()
        solver = _Solver(
            ssa, symbols, entry_env, effects, self._optimistic_uninitialized
        )
        solver.run()
        if timing:
            t2 = perf_counter()
        result = self._assemble(
            proc, build, ssa, solver, record_exit_vars
        )
        if timing:
            t3 = perf_counter()
            PHASES.record(t1 - t0, t2 - t1, t3 - t2)
        return result

    def _analyze_flat(
        self,
        proc: ast.Procedure,
        symbols: ProcedureSymbols,
        entry_env: Dict[str, LatticeValue],
        effects: CallEffects,
        record_exit_vars: Optional[Set[str]],
    ) -> IntraResult:
        timing = PHASES.enabled
        if timing:
            t0 = perf_counter()
        skeleton, release, _hit = self._skeletons.acquire(
            proc, symbols, effects, record_exit_vars
        )
        try:
            if timing:
                t1 = perf_counter()
            outcome = skeleton.solve(
                symbols, entry_env, effects, self._optimistic_uninitialized
            )
        finally:
            release()
        if timing:
            t2 = perf_counter()
        result = self._assemble(
            proc, skeleton.build, skeleton.ssa, outcome, record_exit_vars
        )
        if timing:
            t3 = perf_counter()
            PHASES.record(t1 - t0, t2 - t1, t3 - t2)
        return result

    def _assemble(
        self,
        proc: ast.Procedure,
        build: CFGBuildResult,
        ssa: SSAFunction,
        solved: SolverQueries,
        record_exit_vars: Optional[Set[str]],
    ) -> IntraResult:
        """Package solved state — either backend's — into an IntraResult."""
        detail = SCCDetail(
            build=build,
            ssa=ssa,
            values=solved.values,
            reached_blocks=solved.reached_blocks,
            executable_edges=solved.executable_edges,
            visits={
                "flow_edges": solved.flow_edge_visits,
                "ssa_names": solved.ssa_name_visits,
                "blocks_reached": len(solved.reached_blocks),
                "lattice_cells": len(solved.values),
            },
        )
        exit_values = None
        if record_exit_vars is not None:
            exit_values = solved.exit_values(record_exit_vars)
        return IntraResult(
            proc_name=proc.name,
            engine=self.name,
            call_sites=solved.collect_call_sites(),
            return_value=solved.return_value(),
            detail=detail,
            exit_values=exit_values,
        )


class _Solver(SolverQueries):
    def __init__(
        self,
        ssa: SSAFunction,
        symbols: ProcedureSymbols,
        entry_env: Dict[str, LatticeValue],
        effects: CallEffects,
        optimistic_uninitialized: bool,
    ):
        self._ssa = ssa
        self._cfg = ssa.cfg
        self._effects = effects
        self.values: Dict[SSAName, LatticeValue] = {
            name: entry_value(entry_env, symbols, var, optimistic_uninitialized)
            for var, name in ssa.entry_defs.items()
        }
        self.executable_edges: Set[Edge] = set()
        self.reached_blocks: Set[int] = set()
        self.flow_edge_visits = 0
        self.ssa_name_visits = 0
        self._flow: Deque[Edge] = deque()
        self._ssa_work: Deque[SSAName] = deque()

    # ------------------------------------------------------------------

    def run(self) -> None:
        self._flow.append((None, self._cfg.entry_id))
        while self._flow or self._ssa_work:
            while self._flow:
                self._process_flow_edge(self._flow.popleft())
            while self._ssa_work:
                self._process_ssa_name(self._ssa_work.popleft())

    def _process_flow_edge(self, edge: Edge) -> None:
        self.flow_edge_visits += 1
        if edge in self.executable_edges:
            return
        self.executable_edges.add(edge)
        dest = edge[1]
        for phi in self._ssa.phis.get(dest, ()):
            self._visit_phi(phi)
        if dest in self.reached_blocks:
            return
        self.reached_blocks.add(dest)
        block = self._cfg.blocks[dest]
        for instr in block.instrs:
            self._visit_instr(instr)
        self._visit_terminator(dest)

    def _process_ssa_name(self, name: SSAName) -> None:
        self.ssa_name_visits += 1
        for kind, block_id, node in self._ssa.uses_of.get(name, ()):
            if block_id not in self.reached_blocks:
                continue
            if kind == "phi":
                self._visit_phi(node)
            elif kind == "instr":
                self._visit_instr(node)
            else:  # terminator
                self._visit_terminator(block_id)

    # ------------------------------------------------------------------

    def _set_value(self, name: SSAName, new_value: LatticeValue) -> None:
        old = self._value(name)
        merged = meet(old, new_value)
        if merged != old:
            self.values[name] = merged
            self._ssa_work.append(name)

    def _visit_phi(self, phi: PhiNode) -> None:
        incoming = [
            self._value(name)
            for pred_id, name in phi.args.items()
            if (pred_id, phi.block_id) in self.executable_edges
        ]
        self._set_value(phi.target, meet_all(incoming))

    def _visit_instr(self, instr) -> None:
        if isinstance(instr, AssignInstr):
            assert instr.uses is not None and instr.defs is not None
            result = evaluate_expr(instr.expr, self._lookup_for(instr.uses))
            for var, name in instr.defs.items():
                if var == instr.target:
                    self._set_value(name, result)
                else:  # may-alias partner: value unknown after the store
                    self._set_value(name, BOTTOM)
        elif isinstance(instr, ArrayStoreInstr):
            # Arrays are never propagated: every definition is BOTTOM.
            assert instr.defs is not None
            for name in instr.defs.values():
                self._set_value(name, BOTTOM)
        elif isinstance(instr, CallInstr):
            assert instr.defs is not None
            for var, name in instr.defs.items():
                if instr.target is not None and var == instr.target:
                    self._set_value(name, self._effects.return_value(instr.site))
                else:
                    # Default BOTTOM; the exit-value extension may know the
                    # callee's constant exit value for this variable.
                    self._set_value(
                        name, self._effects.modified_value(instr.site, var)
                    )
        # PrintInstr has no dataflow effect.

    def _visit_terminator(self, block_id: int) -> None:
        term = self._cfg.blocks[block_id].terminator
        if isinstance(term, Jump):
            self._flow.append((block_id, term.target))
        elif isinstance(term, Branch):
            assert term.uses is not None
            cond = evaluate_expr(term.cond, self._lookup_for(term.uses))
            if cond.is_top:
                return
            if cond.is_bottom:
                self._flow.append((block_id, term.true_target))
                self._flow.append((block_id, term.false_target))
            elif cond.const_value != 0:
                self._flow.append((block_id, term.true_target))
            else:
                self._flow.append((block_id, term.false_target))
        # Ret contributes to return_value() after the fixpoint.
