"""Wegman–Zadeck Sparse Conditional Constant propagation (TOPLAS 13(2), 1991).

This is the paper's default intraprocedural method (Section 3): an optimistic
SSA-based propagator that simultaneously discovers constants and unreachable
code.  Two worklists are maintained:

- a *flow* worklist of CFG edges whose executability was just established, and
- an *SSA* worklist of names whose lattice value just lowered.

Phi functions meet only over executable incoming edges; conditional branches
with a constant condition enable only the taken edge, so code that is dead
under the (interprocedurally supplied) entry constants contributes nothing —
this is exactly the mechanism that finds ``f2`` in the paper's Figure 1.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.analysis.base import (
    CallEffects,
    CallSiteValues,
    IntraEngine,
    IntraResult,
    entry_value,
    site_key,
)
from repro.ir.builder import CFGBuildResult, build_cfg
from repro.ir.cfg import ArrayStoreInstr, AssignInstr, Branch, CallInstr, Jump, Ret
from repro.ir.eval import evaluate_expr
from repro.ir.lattice import BOTTOM, TOP, LatticeValue, meet, meet_all
from repro.ir.ssa import PhiNode, SSAFunction, SSAName, build_ssa
from repro.lang import ast
from repro.lang.symbols import ProcedureSymbols

Edge = Tuple[Optional[int], int]  # (pred block id or None for entry, succ id)


@dataclass
class SCCDetail:
    """Engine internals exposed for the transformation pass and tests."""

    build: CFGBuildResult
    ssa: SSAFunction
    values: Dict[SSAName, LatticeValue]
    reached_blocks: Set[int]
    executable_edges: Set[Edge]
    #: Worklist visit counters of the solver run (flow edges processed,
    #: SSA names revisited, ...) — consumed by the observability layer.
    visits: Dict[str, int] = field(default_factory=dict)

    def value_of(self, name: SSAName) -> LatticeValue:
        return self.values.get(name, TOP)

    @property
    def ssa_size(self) -> int:
        """Number of SSA names the solver assigned a lattice cell."""
        return len(self.values)


class SCCEngine(IntraEngine):
    """The Sparse Conditional Constant engine."""

    name = "scc"

    def __init__(self, optimistic_uninitialized: bool = False):
        self._optimistic_uninitialized = optimistic_uninitialized

    def analyze(
        self,
        proc: ast.Procedure,
        symbols: ProcedureSymbols,
        entry_env: Dict[str, LatticeValue],
        effects: CallEffects,
        record_exit_vars: Optional[Set[str]] = None,
    ) -> IntraResult:
        build = build_cfg(proc, symbols)
        cfg = build.cfg
        record_globals: Set[str] = set()
        for instr in cfg.call_instrs():
            record_globals.update(effects.recorded_globals(instr.site))
        ssa = build_ssa(
            cfg,
            call_defs=lambda instr: effects.modified_vars(instr.site),
            record_globals=record_globals,
            assign_extra_defs=lambda target: effects.assign_extra_defs(
                proc.name, target
            ),
            record_at_returns=record_exit_vars,
        )
        solver = _Solver(
            ssa, symbols, entry_env, effects, self._optimistic_uninitialized
        )
        solver.run()
        detail = SCCDetail(
            build=build,
            ssa=ssa,
            values=solver.values,
            reached_blocks=solver.reached_blocks,
            executable_edges=solver.executable_edges,
            visits={
                "flow_edges": solver.flow_edge_visits,
                "ssa_names": solver.ssa_name_visits,
                "blocks_reached": len(solver.reached_blocks),
                "lattice_cells": len(solver.values),
            },
        )
        exit_values = None
        if record_exit_vars is not None:
            exit_values = solver.exit_values(record_exit_vars)
        return IntraResult(
            proc_name=proc.name,
            engine=self.name,
            call_sites=solver.collect_call_sites(),
            return_value=solver.return_value(),
            detail=detail,
            exit_values=exit_values,
        )


class _Solver:
    def __init__(
        self,
        ssa: SSAFunction,
        symbols: ProcedureSymbols,
        entry_env: Dict[str, LatticeValue],
        effects: CallEffects,
        optimistic_uninitialized: bool,
    ):
        self._ssa = ssa
        self._cfg = ssa.cfg
        self._effects = effects
        self.values: Dict[SSAName, LatticeValue] = {
            name: entry_value(entry_env, symbols, var, optimistic_uninitialized)
            for var, name in ssa.entry_defs.items()
        }
        self.executable_edges: Set[Edge] = set()
        self.reached_blocks: Set[int] = set()
        self.flow_edge_visits = 0
        self.ssa_name_visits = 0
        self._flow: Deque[Edge] = deque()
        self._ssa_work: Deque[SSAName] = deque()

    # ------------------------------------------------------------------

    def run(self) -> None:
        self._flow.append((None, self._cfg.entry_id))
        while self._flow or self._ssa_work:
            while self._flow:
                self._process_flow_edge(self._flow.popleft())
            while self._ssa_work:
                self._process_ssa_name(self._ssa_work.popleft())

    def _process_flow_edge(self, edge: Edge) -> None:
        self.flow_edge_visits += 1
        if edge in self.executable_edges:
            return
        self.executable_edges.add(edge)
        dest = edge[1]
        for phi in self._ssa.phis.get(dest, ()):
            self._visit_phi(phi)
        if dest in self.reached_blocks:
            return
        self.reached_blocks.add(dest)
        block = self._cfg.blocks[dest]
        for instr in block.instrs:
            self._visit_instr(instr)
        self._visit_terminator(dest)

    def _process_ssa_name(self, name: SSAName) -> None:
        self.ssa_name_visits += 1
        for kind, block_id, node in self._ssa.uses_of.get(name, ()):
            if block_id not in self.reached_blocks:
                continue
            if kind == "phi":
                self._visit_phi(node)
            elif kind == "instr":
                self._visit_instr(node)
            else:  # terminator
                self._visit_terminator(block_id)

    # ------------------------------------------------------------------

    def _value(self, name: SSAName) -> LatticeValue:
        return self.values.get(name, TOP)

    def _set_value(self, name: SSAName, new_value: LatticeValue) -> None:
        old = self._value(name)
        merged = meet(old, new_value)
        if merged != old:
            self.values[name] = merged
            self._ssa_work.append(name)

    def _lookup_for(self, uses: Dict[str, SSAName]):
        return lambda var: self._value(uses[var])

    def _visit_phi(self, phi: PhiNode) -> None:
        incoming = [
            self._value(name)
            for pred_id, name in phi.args.items()
            if (pred_id, phi.block_id) in self.executable_edges
        ]
        self._set_value(phi.target, meet_all(incoming))

    def _visit_instr(self, instr) -> None:
        if isinstance(instr, AssignInstr):
            assert instr.uses is not None and instr.defs is not None
            result = evaluate_expr(instr.expr, self._lookup_for(instr.uses))
            for var, name in instr.defs.items():
                if var == instr.target:
                    self._set_value(name, result)
                else:  # may-alias partner: value unknown after the store
                    self._set_value(name, BOTTOM)
        elif isinstance(instr, ArrayStoreInstr):
            # Arrays are never propagated: every definition is BOTTOM.
            assert instr.defs is not None
            for name in instr.defs.values():
                self._set_value(name, BOTTOM)
        elif isinstance(instr, CallInstr):
            assert instr.defs is not None
            for var, name in instr.defs.items():
                if instr.target is not None and var == instr.target:
                    self._set_value(name, self._effects.return_value(instr.site))
                else:
                    # Default BOTTOM; the exit-value extension may know the
                    # callee's constant exit value for this variable.
                    self._set_value(
                        name, self._effects.modified_value(instr.site, var)
                    )
        # PrintInstr has no dataflow effect.

    def _visit_terminator(self, block_id: int) -> None:
        term = self._cfg.blocks[block_id].terminator
        if isinstance(term, Jump):
            self._flow.append((block_id, term.target))
        elif isinstance(term, Branch):
            assert term.uses is not None
            cond = evaluate_expr(term.cond, self._lookup_for(term.uses))
            if cond.is_top:
                return
            if cond.is_bottom:
                self._flow.append((block_id, term.true_target))
                self._flow.append((block_id, term.false_target))
            elif cond.const_value != 0:
                self._flow.append((block_id, term.true_target))
            else:
                self._flow.append((block_id, term.false_target))
        # Ret contributes to return_value() after the fixpoint.

    # ------------------------------------------------------------------
    # Post-fixpoint queries.
    # ------------------------------------------------------------------

    def return_value(self) -> LatticeValue:
        contributions: List[LatticeValue] = []
        for block_id in self.reached_blocks:
            term = self._cfg.blocks[block_id].terminator
            if not isinstance(term, Ret):
                continue
            if term.expr is None:
                contributions.append(BOTTOM)
            else:
                assert term.uses is not None
                contributions.append(
                    evaluate_expr(term.expr, self._lookup_for(term.uses))
                )
        return meet_all(contributions)

    def exit_values(self, record_vars: Set[str]) -> Dict[str, LatticeValue]:
        """Meet of each variable's reaching value over executable returns.

        A variable whose value is the same constant at every executable
        return point has that constant as its *exit value* — the quantity
        the Section 3.2 extension propagates back to call sites.  TOP (no
        executable return: the procedure never returns) demotes to BOTTOM.
        """
        values: Dict[str, LatticeValue] = {var: TOP for var in record_vars}
        for block_id in self.reached_blocks:
            term = self._cfg.blocks[block_id].terminator
            if not isinstance(term, Ret) or term.reaching is None:
                continue
            for var in record_vars:
                name = term.reaching.get(var)
                if name is None:
                    values[var] = BOTTOM
                    continue
                values[var] = meet(values[var], self._value(name))
        return {
            var: (BOTTOM if value.is_top else value)
            for var, value in values.items()
        }

    def collect_call_sites(self) -> Dict[Tuple[str, int], CallSiteValues]:
        result: Dict[Tuple[str, int], CallSiteValues] = {}
        for block in self._cfg.blocks:
            for instr in block.instrs:
                if not isinstance(instr, CallInstr):
                    continue
                executable = block.id in self.reached_blocks
                if executable:
                    assert instr.uses is not None
                    lookup = self._lookup_for(instr.uses)
                    arg_values = [evaluate_expr(arg, lookup) for arg in instr.args]
                    global_values = {
                        g: self._value(name)
                        for g, name in (instr.reaching_globals or {}).items()
                        if g in self._effects.recorded_globals(instr.site)
                    }
                else:
                    arg_values = [TOP for _ in instr.args]
                    global_values = {}
                result[site_key(instr.site)] = CallSiteValues(
                    site=instr.site,
                    executable=executable,
                    arg_values=arg_values,
                    global_values=global_values,
                )
        return result
