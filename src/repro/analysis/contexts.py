"""Context-sensitive ICP via value contexts (Padhye & Khedker).

The paper's one-pass flow-sensitive traversal (``core.flow_sensitive``)
substitutes the flow-insensitive solution on every PCG back edge — recursion
never gets flow-sensitive entry facts.  This module implements the
alternative ``ICPConfig.context_mode = "value-contexts"``: a tabulation that
keys reusable procedure summaries by the callee's *abstract entry
environment* (its "value context").

Algorithm
---------

A *context* is a pair (procedure, entry environment).  The table starts
with one root context — the entry procedure under the block-data initial
globals — and grows monotonically:

1. Analyze every pending context with the intraprocedural engine (batched
   through the wavefront scheduler when one is engaged, so the summary
   cache memoizes per-context results under context-qualified slots).
2. For each *executable* call site of an analyzed context, build the
   callee's entry environment from the propagated argument and global
   values and request the context (callee, env): an exact match reuses the
   tabulated entry; a new environment creates and enqueues a new context —
   including across recursive and ``fallback_edges``, which is precisely
   where this mode beats the one-pass traversal.
3. Iterate until no context is pending.

Because call-modified variables go to BOTTOM in the caller (the base-mode
``CallEffects``), no caller ever reads a callee *exit* value: the
tabulation is a pure forward worklist and needs no caller suspension.
Each non-widened context is analyzed exactly once.

Termination and the blowup guard
--------------------------------

Descending-argument recursion (``rec(n - 1)``) terminates naturally: the
base case's decided branch kills the recursive site.  Recursion whose
abstract argument never converges (``rec(n + 1)`` under an undecidable
guard) would enumerate contexts forever; the ``context_max_per_proc``
guard catches it.  Once a procedure holds that many contexts, further
environments are routed into a single *widened* context seeded from the
flow-insensitive fallback environment (the carini-hind answer) and merged
monotonically by lattice meet — each merge that changes the environment
counts as a widening and re-enqueues the context.  The meet only descends
in a finite-height lattice, so the widened context converges.  Call sites
whose request was degraded this way are reported as fallback edges
(surfacing as ICP006), and the procedure is counted in
:class:`ContextStats`.

Soundness
---------

By induction every concrete call is covered by some context whose
environment is sound for it (the root covers program start; executable
sites feed sound environments forward; widening only weakens by meet).
The merged :class:`~repro.core.flow_sensitive.FSResult` takes the meet
over contexts per procedure, so every published claim is sound.  ICP900's
recorder-based sanitizer verifies this empirically in both modes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.base import (
    CallEffects,
    CallSiteValues,
    IntraEngine,
    IntraResult,
    SiteKey,
)
from repro.callgraph.pcg import PCG
from repro.core.config import ICPConfig
from repro.core.flow_insensitive import FIResult
from repro.ir.lattice import BOTTOM, Const, LatticeValue, meet, meet_all
from repro.lang import ast
from repro.lang.symbols import ProcedureSymbols
from repro.obs import NULL_OBS
from repro.sched.cache import (
    config_fingerprint,
    env_fingerprint,
    procedure_fingerprint,
)
from repro.sched.scheduler import AnalysisTask, Scheduler
from repro.summary.alias import AliasInfo
from repro.summary.modref import ModRefInfo


@dataclass
class Context:
    """One tabulated (procedure, entry environment) pair."""

    proc_name: str
    env: Dict[str, LatticeValue]
    env_fp: str
    serial: int
    widened: bool = False
    intra: Optional[IntraResult] = None
    runs: int = 0
    queued: bool = False


@dataclass
class ContextStats:
    """What the value-context tabulation did (deterministic analysis facts).

    Everything here is a pure function of the program and configuration —
    independent of worker count or cache warmth — so it may appear in the
    byte-identity report surface.
    """

    mode: str = "value-contexts"
    #: Total contexts tabulated (widened contexts included, dead-procedure
    #: placeholder analyses excluded).
    contexts: int = 0
    #: Worklist rounds until fixpoint.
    rounds: int = 0
    #: Environment merges into a widened context that changed it.
    widenings: int = 0
    #: Context requests routed to a widened context by the blowup guard.
    degraded_requests: int = 0
    #: Per-procedure context-table sizes (procedures with one context only
    #: are the common case; recursion and polyvariant call sites grow this).
    table_sizes: Dict[str, int] = field(default_factory=dict)
    #: Procedures degraded to a widened (carini-hind-seeded) context.
    degraded_procs: List[str] = field(default_factory=list)

    @property
    def max_table_size(self) -> int:
        return max(self.table_sizes.values(), default=0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "contexts": self.contexts,
            "rounds": self.rounds,
            "widenings": self.widenings,
            "degraded_requests": self.degraded_requests,
            "degraded_procs": list(self.degraded_procs),
            "max_table_size": self.max_table_size,
            "procs": len(self.table_sizes),
        }

    def render(self) -> str:
        """One-paragraph report section (stable text; see analysis_report)."""
        degraded = (
            ", ".join(f"'{p}'" for p in self.degraded_procs)
            if self.degraded_procs
            else "none"
        )
        return "\n".join(
            [
                f"value contexts: {self.contexts} context(s) over "
                f"{len(self.table_sizes)} procedure(s) "
                f"(max {self.max_table_size} per procedure, "
                f"{self.rounds} round(s))",
                f"  widenings: {self.widenings}; degraded procedures: "
                f"{degraded} ({self.degraded_requests} degraded request(s))",
            ]
        )


class _MergedDetail:
    """Engine detail merged across contexts, for the reachability lint.

    ICP004 reads ``build.cfg``/``reached_blocks``/``executable_edges``; the
    union over contexts is the correct may-execute answer.  Per-run
    profiling counters do not merge meaningfully and are left absent.
    """

    __slots__ = ("build", "reached_blocks", "executable_edges")

    def __init__(self, build, reached_blocks, executable_edges):
        self.build = build
        self.reached_blocks = reached_blocks
        self.executable_edges = executable_edges


class _Tabulation:
    """One value-context tabulation run over a prepared pipeline front-end."""

    def __init__(
        self,
        program: ast.Program,
        symbols: Dict[str, ProcedureSymbols],
        pcg: PCG,
        modref: ModRefInfo,
        aliases: Optional[AliasInfo],
        fi: FIResult,
        config: ICPConfig,
        engine: IntraEngine,
        effects: CallEffects,
        result,  # FSResult, duck-typed to avoid an import cycle
        scheduler: Optional[Scheduler] = None,
    ):
        self.program = program
        self.symbols = symbols
        self.pcg = pcg
        self.modref = modref
        self.aliases = aliases
        self.fi = fi
        self.config = config
        self.engine = engine
        self.effects = effects
        self.result = result
        self.scheduler = (
            scheduler if scheduler is not None and scheduler.engaged else None
        )
        self.obs = scheduler.obs if scheduler is not None else NULL_OBS
        self.proc_map = program.procedure_map()

        #: proc -> env fingerprint -> Context (insertion = creation order).
        self.tables: Dict[str, Dict[str, Context]] = {}
        #: The per-procedure widened context, once the blowup guard fires.
        self.widened: Dict[str, Context] = {}
        self.pending: List[Context] = []
        #: Call sites whose context request was degraded by the guard.
        self.fallback_sites: Set[SiteKey] = set()
        self.stats = ContextStats()
        self._serial = 0
        self._config_fp = config_fingerprint(
            config.engine, config.propagate_floats, program.global_names,
            "fs", config.engine_backend,
        )

    # -- table maintenance -------------------------------------------------

    def _new_context(
        self, proc: str, env: Dict[str, LatticeValue], widened: bool = False
    ) -> Context:
        ctx = Context(
            proc_name=proc,
            env=env,
            env_fp=env_fingerprint(env),
            serial=self._serial,
            widened=widened,
        )
        self._serial += 1
        self.stats.contexts += 1
        self._enqueue(ctx)
        return ctx

    def _enqueue(self, ctx: Context) -> None:
        if not ctx.queued:
            ctx.queued = True
            self.pending.append(ctx)

    def _request(self, proc: str, env: Dict[str, LatticeValue], site) -> None:
        """Look up or create the context for (proc, env).

        ``site`` is the requesting call site, recorded as a fallback site
        when the blowup guard routes the request to the widened context.
        """
        table = self.tables.setdefault(proc, {})
        fp = env_fingerprint(env)
        if fp in table:
            return
        widened = self.widened.get(proc)
        if widened is not None:
            self.stats.degraded_requests += 1
            self.fallback_sites.add((site.caller, site.index))
            self._widen_into(widened, env)
            return
        if len(table) >= self.config.context_max_per_proc:
            # Blowup guard: degrade to one widened context seeded from the
            # FI fallback environment (the carini-hind answer on this edge).
            self.stats.degraded_requests += 1
            self.stats.degraded_procs.append(proc)
            self.fallback_sites.add((site.caller, site.index))
            seed = self._fi_fallback_env(proc)
            merged = {
                name: meet(seed.get(name, BOTTOM), env.get(name, BOTTOM))
                for name in dict.fromkeys(list(seed) + list(env))
            }
            self.widened[proc] = self._new_context(proc, merged, widened=True)
            return
        table[fp] = self._new_context(proc, env)

    def _widen_into(self, ctx: Context, env: Dict[str, LatticeValue]) -> None:
        """Monotone merge of a requested environment into a widened context."""
        changed = False
        for name in dict.fromkeys(list(ctx.env) + list(env)):
            old = ctx.env.get(name, BOTTOM)
            new = meet(old, env.get(name, BOTTOM))
            if new != old:
                ctx.env[name] = new
                changed = True
        if changed:
            self.stats.widenings += 1
            self._enqueue(ctx)

    # -- environment construction ------------------------------------------

    def _root_env(self) -> Dict[str, LatticeValue]:
        """The imaginary call to the entry procedure (block-data globals)."""
        env: Dict[str, LatticeValue] = {}
        for name, value in self.program.initial_globals().items():
            env[name] = (
                Const(value) if self.config.admit_value(value) else BOTTOM
            )
        return env

    def _callee_env(
        self, callee: str, site_values: CallSiteValues
    ) -> Dict[str, LatticeValue]:
        """Entry environment one executable call site supplies its callee."""
        env: Dict[str, LatticeValue] = {}
        arg_values = site_values.arg_values
        for index, formal in enumerate(self.symbols[callee].formals):
            value = arg_values[index] if index < len(arg_values) else BOTTOM
            value = self.config.admit(value)
            env[formal] = BOTTOM if value.is_top else value
        for name in sorted(self.modref.ref_globals(callee)):
            value = self.config.admit(
                site_values.global_values.get(name, BOTTOM)
            )
            env[name] = BOTTOM if value.is_top else value
        return env

    def _fi_fallback_env(self, proc: str) -> Dict[str, LatticeValue]:
        """The flow-insensitive entry environment (widened-context seed)."""
        env: Dict[str, LatticeValue] = {}
        for formal in self.symbols[proc].formals:
            value = self.config.admit(self.fi.formal_value(proc, formal))
            env[formal] = BOTTOM if value.is_top else value
        for name in sorted(self.modref.ref_globals(proc)):
            if name in self.fi.global_constants:
                constant = self.fi.global_constants[name]
                env[name] = (
                    Const(constant)
                    if self.config.admit_value(constant)
                    else BOTTOM
                )
            else:
                env[name] = BOTTOM
        return env

    def _bottom_env(self, proc: str) -> Dict[str, LatticeValue]:
        """The claim-nothing environment for FS-dead procedures."""
        env = {formal: BOTTOM for formal in self.symbols[proc].formals}
        for name in sorted(self.modref.ref_globals(proc)):
            env[name] = BOTTOM
        return env

    # -- analysis ----------------------------------------------------------

    def run(self) -> None:
        root = self._new_context(self.pcg.entry, self._root_env())
        self.tables.setdefault(self.pcg.entry, {})[root.env_fp] = root
        while self.pending:
            batch = self._drain()
            self._analyze(batch)
            for ctx in batch:
                self._propagate(ctx)
            self.stats.rounds += 1

        self.stats.table_sizes = {
            proc: len(self.tables.get(proc, {}))
            + (1 if proc in self.widened else 0)
            for proc in self.pcg.rpo
            if self.tables.get(proc) or proc in self.widened
        }
        self.stats.degraded_procs = sorted(set(self.stats.degraded_procs))

        dead = self._analyze_dead()
        self._merge(dead)

    def _drain(self) -> List[Context]:
        batch = self.pending
        self.pending = []
        for ctx in batch:
            ctx.queued = False
        batch.sort(
            key=lambda ctx: (
                self.pcg.rpo_position(ctx.proc_name),
                env_fingerprint(ctx.env),
            )
        )
        return batch

    def _analyze(self, batch: List[Context]) -> None:
        if self.scheduler is not None:
            self._analyze_scheduled(batch)
            return
        tracer = self.obs.tracer
        for ctx in batch:
            proc = self.proc_map[ctx.proc_name]
            proc_symbols = self.symbols[ctx.proc_name]
            started = time.perf_counter()
            if tracer.enabled:
                with tracer.span(
                    "engine", cat="engine", proc=ctx.proc_name,
                    pass_label="fs", engine=self.engine.name,
                    context=ctx.env_fp,
                ):
                    intra = self.engine.analyze(
                        proc, proc_symbols, dict(ctx.env), self.effects
                    )
            else:
                intra = self.engine.analyze(
                    proc, proc_symbols, dict(ctx.env), self.effects
                )
            elapsed = time.perf_counter() - started
            self.result.intra_seconds += elapsed
            ctx.intra = intra
            ctx.runs += 1
            if self.obs.enabled:
                from repro.core.flow_sensitive import _observe_serial_run

                _observe_serial_run(self.obs, ctx.proc_name, intra, elapsed)

    def _analyze_scheduled(self, batch: List[Context]) -> None:
        # Lazy import: flow_sensitive imports this module for mode dispatch.
        from repro.core.flow_sensitive import fs_effects_fingerprint

        scheduler = self.scheduler
        tasks: List[Tuple[Context, AnalysisTask]] = []
        for ctx in batch:
            proc_symbols = self.symbols[ctx.proc_name]
            context_fp = env_fingerprint(ctx.env)
            fingerprints: tuple = ()
            if scheduler.cache is not None:
                fingerprints = (
                    procedure_fingerprint(self.proc_map[ctx.proc_name]),
                    context_fp,
                    fs_effects_fingerprint(
                        ctx.proc_name, proc_symbols, self.effects, self.aliases
                    ),
                    self._config_fp,
                )
            tasks.append(
                (
                    ctx,
                    AnalysisTask(
                        proc_name=ctx.proc_name,
                        proc=self.proc_map[ctx.proc_name],
                        symbols=proc_symbols,
                        entry_env=dict(ctx.env),
                        effects=self.effects,
                        engine=self.config.engine,
                        engine_backend=self.config.engine_backend,
                        pass_label="fs",
                        fingerprints=fingerprints,
                        context=context_fp,
                    ),
                )
            )
        outcomes = scheduler.run_level([task for _, task in tasks])
        for ctx, task in tasks:
            ctx.intra = outcomes[task.key]
            ctx.runs += 1

    def _propagate(self, ctx: Context) -> None:
        """Request callee contexts for every executable call site of ``ctx``."""
        proc_symbols = self.symbols[ctx.proc_name]
        intra = ctx.intra
        for site in proc_symbols.call_sites:
            site_values = intra.call_sites.get((ctx.proc_name, site.index))
            if site_values is None or not site_values.executable:
                continue
            callee = site.callee
            if callee not in self.proc_map or callee not in self.symbols:
                continue  # missing procedure (allow_missing)
            self._request(callee, self._callee_env(callee, site_values), site)

    def _analyze_dead(self) -> Dict[str, Context]:
        """Analyze FS-dead procedures once under the claim-nothing env.

        Mirrors the one-pass traversal, which analyzes every PCG node
        exactly once: dead procedures still get an intra table (the report
        renders their call sites) but never join ``fs_reachable`` and never
        propagate contexts.
        """
        dead = [
            proc
            for proc in self.pcg.rpo
            if not self.tables.get(proc) and proc not in self.widened
        ]
        contexts: Dict[str, Context] = {}
        if not dead:
            return contexts
        batch: List[Context] = []
        for proc in dead:
            ctx = Context(
                proc_name=proc,
                env=self._bottom_env(proc),
                env_fp="",
                serial=-1,
            )
            ctx.env_fp = env_fingerprint(ctx.env)
            contexts[proc] = ctx
            batch.append(ctx)
        self._analyze(batch)
        return contexts

    # -- merging into the FSResult surface ---------------------------------

    def _merge(self, dead: Dict[str, Context]) -> None:
        result = self.result
        entry = self.pcg.entry
        for proc in self.pcg.rpo:
            contexts = [
                ctx
                for ctx in self.tables.get(proc, {}).values()
                if ctx.intra is not None
            ]
            widened = self.widened.get(proc)
            if widened is not None and widened.intra is not None:
                contexts.append(widened)
            contexts.sort(key=lambda ctx: ctx.serial)

            if not contexts:
                ctx = dead[proc]
                result.intra[proc] = ctx.intra
                self._record_entry(proc, [ctx], entry, result)
                continue

            result.fs_reachable.add(proc)
            result.intra[proc] = self._merge_intra(contexts)
            self._record_entry(proc, contexts, entry, result)

        # Fallback edges: only the requests the blowup guard degraded keep
        # the FI-fallback character (and their ICP006 notes); resolved
        # recursive edges carry genuine per-context entry facts.
        result.fallback_edges = [
            edge
            for proc in self.pcg.rpo
            for edge in self.pcg.edges_into(proc)
            if (edge.caller, edge.site.index) in self.fallback_sites
        ]
        result.contexts = self.stats

    def _record_entry(
        self, proc: str, contexts: List[Context], entry: str, result
    ) -> None:
        """Meet-merged entry tables, in the serial traversal's key order."""
        if proc == entry:
            # The root's imaginary call carries block-data globals only; a
            # recursive call back into the entry procedure meets in.
            for name in self.program.initial_globals():
                value = meet_all(
                    ctx.env.get(name, BOTTOM) for ctx in contexts
                )
                result.entry_globals[(proc, name)] = (
                    BOTTOM if value.is_top else value
                )
            return
        for formal in self.symbols[proc].formals:
            value = meet_all(ctx.env.get(formal, BOTTOM) for ctx in contexts)
            result.entry_formals[(proc, formal)] = (
                BOTTOM if value.is_top else value
            )
        for name in sorted(self.modref.ref_globals(proc)):
            value = meet_all(ctx.env.get(name, BOTTOM) for ctx in contexts)
            result.entry_globals[(proc, name)] = (
                BOTTOM if value.is_top else value
            )

    def _merge_intra(self, contexts: List[Context]) -> IntraResult:
        if len(contexts) == 1:
            return contexts[0].intra
        base = contexts[0].intra
        call_sites: Dict[SiteKey, CallSiteValues] = {}
        for key, first in base.call_sites.items():
            per_context = [ctx.intra.call_sites.get(key) for ctx in contexts]
            executable = [
                sv for sv in per_context if sv is not None and sv.executable
            ]
            if not executable:
                call_sites[key] = CallSiteValues(
                    site=first.site,
                    executable=False,
                    arg_values=list(first.arg_values),
                    global_values=dict(first.global_values),
                )
                continue
            arg_values = [
                meet_all(values)
                for values in zip(*(sv.arg_values for sv in executable))
            ]
            global_values: Dict[str, LatticeValue] = {}
            names = list(executable[0].global_values)
            extra = sorted(
                set().union(*(sv.global_values for sv in executable))
                - set(names)
            )
            for name in names + extra:
                global_values[name] = meet_all(
                    sv.global_values.get(name, BOTTOM) for sv in executable
                )
            call_sites[key] = CallSiteValues(
                site=first.site,
                executable=True,
                arg_values=arg_values,
                global_values=global_values,
            )
        return IntraResult(
            proc_name=base.proc_name,
            engine=base.engine,
            call_sites=call_sites,
            return_value=meet_all(
                ctx.intra.return_value for ctx in contexts
            ),
            detail=self._merge_detail(contexts),
            exit_values=None,
        )

    def _merge_detail(self, contexts: List[Context]):
        details = [ctx.intra.detail for ctx in contexts]
        if any(
            detail is None or not hasattr(detail, "reached_blocks")
            for detail in details
        ):
            return None
        reached = set()
        edges = set()
        for detail in details:
            reached |= set(detail.reached_blocks)
            edges |= set(detail.executable_edges)
        return _MergedDetail(details[0].build, reached, edges)


def value_contexts_icp(
    program: ast.Program,
    symbols: Dict[str, ProcedureSymbols],
    pcg: PCG,
    modref: ModRefInfo,
    aliases: Optional[AliasInfo],
    fi: FIResult,
    config: ICPConfig,
    engine: IntraEngine,
    effects: CallEffects,
    result,
    scheduler: Optional[Scheduler] = None,
) -> None:
    """Fill ``result`` (an FSResult) with the value-context solution."""
    tabulation = _Tabulation(
        program, symbols, pcg, modref, aliases, fi, config, engine,
        effects, result, scheduler,
    )
    if scheduler is not None and scheduler.engaged:
        before = scheduler.stats.analysis_seconds
        tabulation.run()
        result.intra_seconds += scheduler.stats.analysis_seconds - before
    else:
        tabulation.run()
