"""Dead-assignment elimination (the cleanup half of the backward walk).

After constant substitution, assignments like ``x = 3`` whose value was
propagated into every use become dead; this pass removes them using a
per-instruction backward liveness analysis.

Safety rules:

- only *local* variables are candidates — globals are visible to other
  procedures and formals are by-reference (a store through a formal writes
  the caller's variable);
- right-hand sides in MiniF are side-effect free by construction (calls are
  statements), so removing a dead assignment can only remove work;
- statements in unreachable code are left untouched (nothing reads them, but
  nothing executes them either — the transform pass handles pruning).

The pass iterates to a fixpoint: removing ``x = y`` may render ``y``'s own
definition dead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.ir.builder import build_cfg
from repro.ir.cfg import ArrayStoreInstr, AssignInstr, CallInstr, PrintInstr
from repro.ir.ssa import instr_use_vars
from repro.lang import ast
from repro.lang.symbols import CallSite, ProcedureSymbols, collect_symbols


@dataclass
class DCEResult:
    """Outcome of dead-assignment elimination."""

    program: ast.Program
    removed: int = 0


def eliminate_dead_assignments(
    program: ast.Program,
    call_uses: Optional[Callable[[CallSite], Set[str]]] = None,
    max_rounds: int = 10,
) -> DCEResult:
    """Remove assignments to locals that are never subsequently read.

    :param call_uses: caller variables a call may read (e.g. a bound
        ``ModRefInfo.callsite_ref``); defaults to the safe assumption that a
        call reads every argument variable and every global.
    """
    globals_set = set(program.global_names)
    if call_uses is None:
        def call_uses(site: CallSite) -> Set[str]:  # noqa: F811
            used = set(globals_set)
            for arg in site.args:
                used.update(ast.expr_variables(arg))
            return used

    total_removed = 0
    current = program
    for _ in range(max(1, max_rounds)):
        current, removed = _one_round(current, call_uses)
        total_removed += removed
        if removed == 0:
            break
    return DCEResult(program=current, removed=total_removed)


def _one_round(program: ast.Program, call_uses) -> "tuple[ast.Program, int]":
    symbols = collect_symbols(program)
    dead_ids: Set[int] = set()
    for proc in program.procedures:
        dead_ids.update(_dead_assignments(proc, symbols[proc.name], call_uses))
    if not dead_ids:
        return program, 0
    new_procs = [
        ast.Procedure(
            proc.name, list(proc.formals), _strip(proc.body, dead_ids), proc.pos
        )
        for proc in program.procedures
    ]
    new_program = ast.Program(
        list(program.global_names),
        [ast.GlobalInit(e.name, e.value, e.pos) for e in program.inits],
        new_procs,
    )
    return new_program, len(dead_ids)


def _dead_assignments(
    proc: ast.Procedure,
    proc_symbols: ProcedureSymbols,
    call_uses,
) -> Set[int]:
    """ids of Assign statements to locals that are dead in ``proc``."""
    build = build_cfg(proc, proc_symbols)
    cfg = build.cfg
    rpo = cfg.reachable_ids()
    reachable = set(rpo)

    # Block-level liveness fixpoint (may-read-later).
    live_in: Dict[int, Set[str]] = {b: set() for b in rpo}
    changed = True
    while changed:
        changed = False
        for block_id in reversed(rpo):
            live = set()
            for succ in cfg.blocks[block_id].succs:
                if succ in reachable:
                    live |= live_in[succ]
            live = _through_block(cfg.blocks[block_id], live, call_uses)
            if live != live_in[block_id]:
                live_in[block_id] = live
                changed = True

    # Per-instruction pass marking dead local assignments.
    dead: Set[int] = set()
    for block_id in rpo:
        block = cfg.blocks[block_id]
        live = set()
        for succ in block.succs:
            if succ in reachable:
                live |= live_in[succ]
        if block.terminator is not None:
            live |= instr_use_vars(block.terminator)
        for instr in reversed(block.instrs):
            if isinstance(instr, AssignInstr):
                target_kind = proc_symbols.kind_of(instr.target)
                if target_kind == "local" and instr.target not in live:
                    if instr.stmt is not None:
                        dead.add(id(instr.stmt))
                    continue  # a dead store: contributes no uses
                live.discard(instr.target)
                live |= instr_use_vars(instr)
            elif isinstance(instr, ArrayStoreInstr):
                # Never removed (may-def, possibly aliased); keeps the array
                # and its operands live.
                live.add(instr.target)
                live |= instr_use_vars(instr)
            elif isinstance(instr, CallInstr):
                if instr.target is not None:
                    live.discard(instr.target)
                live |= call_uses(instr.site)
            elif isinstance(instr, PrintInstr):
                live |= instr_use_vars(instr)
    return dead


def _through_block(block, live_out: Set[str], call_uses) -> Set[str]:
    """Transfer a block backwards for the block-level fixpoint."""
    live = set(live_out)
    if block.terminator is not None:
        live |= instr_use_vars(block.terminator)
    for instr in reversed(block.instrs):
        if isinstance(instr, AssignInstr):
            live.discard(instr.target)
            live |= instr_use_vars(instr)
        elif isinstance(instr, ArrayStoreInstr):
            live.add(instr.target)
            live |= instr_use_vars(instr)
        elif isinstance(instr, CallInstr):
            if instr.target is not None:
                live.discard(instr.target)
            live |= call_uses(instr.site)
        elif isinstance(instr, PrintInstr):
            live |= instr_use_vars(instr)
    return live


def _strip(block: ast.Block, dead_ids: Set[int]) -> ast.Block:
    stmts: List[ast.Stmt] = []
    for stmt in block.stmts:
        if id(stmt) in dead_ids:
            continue
        if isinstance(stmt, ast.Block):
            stmts.append(_strip(stmt, dead_ids))
        elif isinstance(stmt, ast.If):
            stmts.append(
                ast.If(
                    stmt.cond,
                    _strip(stmt.then_block, dead_ids),
                    _strip(stmt.else_block, dead_ids)
                    if stmt.else_block is not None
                    else None,
                    stmt.pos,
                )
            )
        elif isinstance(stmt, ast.While):
            stmts.append(ast.While(stmt.cond, _strip(stmt.body, dead_ids), stmt.pos))
        else:
            stmts.append(stmt)
    return ast.Block(stmts, block.pos)
