"""Intraprocedural analyses: constant propagation engines and transforms."""

from repro.analysis.base import (
    CallEffects,
    CallSiteValues,
    ConservativeEffects,
    IntraEngine,
    IntraResult,
)
from repro.analysis.scc import SCCEngine
from repro.analysis.simple import SimpleEngine
from repro.analysis.liveness import upward_exposed
from repro.analysis.transform import TransformResult, transform_program

__all__ = [
    "CallEffects",
    "CallSiteValues",
    "ConservativeEffects",
    "IntraEngine",
    "IntraResult",
    "SCCEngine",
    "SimpleEngine",
    "TransformResult",
    "transform_program",
    "upward_exposed",
]
