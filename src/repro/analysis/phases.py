"""Per-phase wall-clock accounting for the intraprocedural engine.

The bench harness wants to attribute engine time to the three phases the
profiler identified as hot — SSA-form construction (``ssa``), the sparse
conditional constant fixpoint (``scc``), and the post-fixpoint queries that
assemble the result (``solve``) — so that a backend change can show *where*
it wins, not just that it wins.

One module-level :class:`PhaseClock` is shared by every engine instance in
the process.  It is **off by default**: a disabled clock costs the engine a
single attribute check per ``analyze`` call.  ``repro-icp bench --phases``
enables it around timed runs; nothing else should.

The clock is intentionally not thread-safe beyond CPython's atomic
float/int updates — the phases bench runs the pipeline serially, which is
the only configuration where per-phase attribution is meaningful anyway.
"""

from __future__ import annotations

from typing import Dict

#: The engine phases the clock attributes time to.
PHASE_NAMES = ("ssa", "scc", "solve")


class PhaseClock:
    """Accumulates wall-clock seconds per engine phase across analyses."""

    __slots__ = ("enabled", "seconds", "calls")

    def __init__(self) -> None:
        self.enabled = False
        self.seconds: Dict[str, float] = {name: 0.0 for name in PHASE_NAMES}
        #: Number of ``analyze`` calls that contributed to the totals.
        self.calls = 0

    def reset(self) -> None:
        """Zero the accumulators (leaves ``enabled`` untouched)."""
        for name in PHASE_NAMES:
            self.seconds[name] = 0.0
        self.calls = 0

    def record(self, ssa: float, scc: float, solve: float) -> None:
        """Add one analysis' per-phase durations (seconds)."""
        self.seconds["ssa"] += ssa
        self.seconds["scc"] += scc
        self.seconds["solve"] += solve
        self.calls += 1

    def snapshot(self) -> Dict[str, float]:
        """The accumulated totals plus the contributing call count."""
        out: Dict[str, float] = dict(self.seconds)
        out["calls"] = self.calls
        return out


#: The process-wide clock consumed by ``SCCEngine`` and the phases bench.
PHASES = PhaseClock()
