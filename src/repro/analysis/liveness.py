"""Upward-exposed-use computation (the intraprocedural half of USE).

A variable is *upward exposed* in a procedure if some path from entry may read
it before any definition.  The paper computes flow-sensitive procedure USE
information with the same one-pass PCG scheme as the constant propagation (REF
for back edges); :mod:`repro.summary.use` supplies the interprocedural part and
calls into this module per procedure.

Kill sets contain only *must* definitions (direct assignment targets and call
result targets); may-definitions from call MOD effects or alias partners never
kill, so the analysis stays conservative (a may-modified variable can still be
read-before-write on the path where the call does not modify it).
"""

from __future__ import annotations

from typing import Callable, Dict, Set

from repro.ir.cfg import ArrayStoreInstr, AssignInstr, CallInstr, CFG, PrintInstr
from repro.ir.ssa import instr_use_vars
from repro.lang.symbols import CallSite


def upward_exposed(
    cfg: CFG,
    call_uses: Callable[[CallSite], Set[str]],
    *,
    include_print: bool = True,
) -> Set[str]:
    """Variables that may be read before being written in ``cfg``.

    :param call_uses: maps a call site to the caller-variable names the call
        may read (argument-expression variables plus bound-through uses; the
        interprocedural USE pass supplies this from callee summaries).
    """
    rpo = cfg.reachable_ids()
    reachable = set(rpo)

    gen: Dict[int, Set[str]] = {}
    kill: Dict[int, Set[str]] = {}
    for block_id in rpo:
        block = cfg.blocks[block_id]
        block_gen: Set[str] = set()
        block_kill: Set[str] = set()

        def expose(names: Set[str]) -> None:
            block_gen.update(names - block_kill)

        for instr in block.instrs:
            if isinstance(instr, AssignInstr):
                expose(instr_use_vars(instr))
                block_kill.add(instr.target)
            elif isinstance(instr, ArrayStoreInstr):
                # An element store is a may-def: it never kills the array.
                expose(instr_use_vars(instr))
            elif isinstance(instr, CallInstr):
                expose(call_uses(instr.site))
                if instr.target is not None:
                    block_kill.add(instr.target)
            elif isinstance(instr, PrintInstr):
                if include_print:
                    expose(instr_use_vars(instr))
        term = block.terminator
        if term is not None:
            expose(instr_use_vars(term))
        gen[block_id] = block_gen
        kill[block_id] = block_kill

    live_in: Dict[int, Set[str]] = {block_id: set(gen[block_id]) for block_id in rpo}
    changed = True
    while changed:
        changed = False
        for block_id in reversed(rpo):
            live_out: Set[str] = set()
            for succ_id in cfg.blocks[block_id].succs:
                if succ_id in reachable:
                    live_out.update(live_in[succ_id])
            new_in = gen[block_id] | (live_out - kill[block_id])
            if new_in != live_in[block_id]:
                live_in[block_id] = new_in
                changed = True
    return live_in[cfg.entry_id]
