"""Upward-exposed-use computation (the intraprocedural half of USE).

A variable is *upward exposed* in a procedure if some path from entry may read
it before any definition.  The paper computes flow-sensitive procedure USE
information with the same one-pass PCG scheme as the constant propagation (REF
for back edges); :mod:`repro.summary.use` supplies the interprocedural part and
calls into this module per procedure.

Kill sets contain only *must* definitions (direct assignment targets and call
result targets); may-definitions from call MOD effects or alias partners never
kill, so the analysis stays conservative (a may-modified variable can still be
read-before-write on the path where the call does not modify it).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.ir.cfg import ArrayStoreInstr, AssignInstr, CallInstr, CFG, PrintInstr
from repro.ir.ssa import instr_use_vars
from repro.lang.symbols import CallSite


def upward_exposed(
    cfg: CFG,
    call_uses: Callable[[CallSite], Set[str]],
    *,
    include_print: bool = True,
    call_kills: Optional[Callable[[CallSite], Set[str]]] = None,
) -> Set[str]:
    """Variables that may be read before being written in ``cfg``.

    :param call_uses: maps a call site to the caller-variable names the call
        may read (argument-expression variables plus bound-through uses; the
        interprocedural USE pass supplies this from callee summaries).
    :param call_kills: when given, a call additionally kills these caller
        variables.  The USE computation never passes this (call MOD effects
        are may-defs and must not kill); the use-before-initialization
        diagnostic does, crediting interprocedural MOD sets as initializers
        so only variables no call path writes remain exposed.
    """
    rpo = cfg.reachable_ids()
    reachable = set(rpo)

    gen: Dict[int, Set[str]] = {}
    kill: Dict[int, Set[str]] = {}
    for block_id in rpo:
        block = cfg.blocks[block_id]
        block_gen: Set[str] = set()
        block_kill: Set[str] = set()

        def expose(names: Set[str]) -> None:
            block_gen.update(names - block_kill)

        for instr in block.instrs:
            if isinstance(instr, AssignInstr):
                expose(instr_use_vars(instr))
                block_kill.add(instr.target)
            elif isinstance(instr, ArrayStoreInstr):
                # An element store is a may-def: it never kills the array.
                expose(instr_use_vars(instr))
            elif isinstance(instr, CallInstr):
                expose(call_uses(instr.site))
                if call_kills is not None:
                    block_kill.update(call_kills(instr.site))
                if instr.target is not None:
                    block_kill.add(instr.target)
            elif isinstance(instr, PrintInstr):
                if include_print:
                    expose(instr_use_vars(instr))
        term = block.terminator
        if term is not None:
            expose(instr_use_vars(term))
        gen[block_id] = block_gen
        kill[block_id] = block_kill

    live_in: Dict[int, Set[str]] = {block_id: set(gen[block_id]) for block_id in rpo}
    changed = True
    while changed:
        changed = False
        for block_id in reversed(rpo):
            live_out: Set[str] = set()
            for succ_id in cfg.blocks[block_id].succs:
                if succ_id in reachable:
                    live_out.update(live_in[succ_id])
            new_in = gen[block_id] | (live_out - kill[block_id])
            if new_in != live_in[block_id]:
                live_in[block_id] = new_in
                changed = True
    return live_in[cfg.entry_id]


def dead_assignments(
    cfg: CFG,
    call_uses: Callable[[CallSite], Set[str]],
    exit_live: Set[str],
    partners: Callable[[str], Set[str]],
) -> List[AssignInstr]:
    """Scalar assignments whose stored value no execution can read.

    Classic backward liveness at instruction granularity, with the
    interprocedural pieces supplied by the caller:

    - ``call_uses`` binds callee USE summaries through argument lists, so a
      variable read inside (or below) a callee stays live across the call;
    - ``exit_live`` holds the variables observable after the procedure
      returns (formals and globals for non-entry procedures; nothing for the
      program entry);
    - ``partners`` gives may-alias partners — a store to an aliased name is
      live whenever any partner is.

    Call MOD effects never kill (may-defs), array-element stores are skipped
    entirely (may-defs of the whole array, the paper's blind spot), and only
    CFG-reachable blocks are scanned — dead *code* is ICP004's business, not
    a dead store.
    """
    rpo = cfg.reachable_ids()
    reachable = set(rpo)

    # Block-level backward fixpoint over live-in sets.
    live_in: Dict[int, Set[str]] = {block_id: set() for block_id in rpo}

    def transfer(block_id: int, live_out: Set[str]) -> Tuple[Set[str], List[AssignInstr]]:
        """Walk one block backward; returns (live-in, dead assigns seen)."""
        live = set(live_out)
        dead: List[AssignInstr] = []
        block = cfg.blocks[block_id]
        term = block.terminator
        if term is not None:
            live.update(instr_use_vars(term))
        for instr in reversed(block.instrs):
            if isinstance(instr, AssignInstr):
                target = instr.target
                observed = target in live or any(
                    p in live for p in partners(target)
                )
                if not observed:
                    dead.append(instr)
                live.discard(target)
                live.update(instr_use_vars(instr))
            elif isinstance(instr, ArrayStoreInstr):
                live.update(instr_use_vars(instr))
            elif isinstance(instr, CallInstr):
                if instr.target is not None:
                    live.discard(instr.target)
                live.update(call_uses(instr.site))
            elif isinstance(instr, PrintInstr):
                live.update(instr_use_vars(instr))
        return live, dead

    changed = True
    while changed:
        changed = False
        for block_id in reversed(rpo):
            live_out: Set[str] = (
                set(exit_live) if not cfg.blocks[block_id].succs else set()
            )
            for succ_id in cfg.blocks[block_id].succs:
                if succ_id in reachable:
                    live_out.update(live_in[succ_id])
            new_in, _ = transfer(block_id, live_out)
            if new_in != live_in[block_id]:
                live_in[block_id] = new_in
                changed = True

    dead: List[AssignInstr] = []
    for block_id in rpo:
        live_out = set(exit_live) if not cfg.blocks[block_id].succs else set()
        for succ_id in cfg.blocks[block_id].succs:
            if succ_id in reachable:
                live_out.update(live_in[succ_id])
        dead.extend(transfer(block_id, live_out)[1])
    return dead
