"""The sharded serve front: a consistent-hash router over worker processes.

``repro-icp serve --shards N`` turns the single GIL-bound daemon into a
process-per-shard deployment:

- the **router** (this module) owns the public socket and consistent-hashes
  every ``/programs/<id>`` request onto one of N shards
  (:class:`~repro.serve.hashring.HashRing`, so placement is deterministic
  and stable under respawns);
- each **shard** is a full :class:`~repro.serve.daemon.AnalysisServer` in
  its own process (:mod:`repro.serve.worker`, spawned through the
  spawn-safe :func:`repro.sched.pool.spawn_context`), serving on a private
  loopback socket;
- shards coordinate *only* through the shared persistent store
  (:mod:`repro.store`), so any shard can warm-start any program — which is
  what makes shards disposable: a **supervisor** thread sweeps every
  ``serve_rebalance`` seconds and respawns dead shards in place.

End-to-end guarantees:

- **Backpressure propagates.**  The router bounds its own in-flight
  proxied requests at ``serve_max_queue x shards`` and answers 503 +
  ``Retry-After`` beyond it; a worker-side 503's ``Retry-After`` is passed
  through verbatim.
- **Failures are clean.**  A request caught mid-flight by a shard crash is
  answered with JSON 503 + ``Retry-After`` — never a partial or corrupt
  payload — and the supervisor is woken to respawn the shard immediately.
- **Degradation is end-to-end.**  Per-request deadlines are enforced by
  the worker; its degraded flow-insensitive answers (``"degraded": true``)
  and 504s proxy through unchanged.

Tests inject :class:`LocalShard` backends (in-process, deterministic);
production uses :class:`ProcessShard`.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlparse

from repro.core.config import ICPConfig
from repro.obs import NULL_OBS, Observability, StructuredLog, merge_snapshots
from repro.sched.pool import spawn_context
from repro.serve import context as request_context
from repro.serve.daemon import (
    API_VERSION,
    RETRY_AFTER_SECONDS,
    AnalysisServer,
    JSONHTTPFront,
    serve_observability,
)
from repro.serve.hashring import HashRing
from repro.serve.worker import run_worker, worker_config

#: Seconds the router waits for a freshly spawned shard to report its port
#: (generous: a cold spawn re-imports the interpreter and the package).
SPAWN_TIMEOUT_SECONDS = 120.0

#: Extra seconds past the request deadline before a proxied call is
#: abandoned; the worker answers degraded/504 at the deadline itself, so
#: tripping this means the shard is wedged, not slow.
PROXY_GRACE_SECONDS = 60.0

#: Socket timeout for router-internal health/stats probes of a shard.
PROBE_TIMEOUT_SECONDS = 10.0


class ShardUnavailable(Exception):
    """The shard could not take or finish a request (mapped to HTTP 503)."""


@dataclass
class RouterStats:
    """Request counters of one router since start."""

    requests: int = 0
    #: Requests handed to a shard (includes non-2xx shard answers).
    proxied: int = 0
    completed: int = 0
    #: Rejected by router-level backpressure (HTTP 503).
    rejected: int = 0
    #: Proxied requests that died with their shard (HTTP 503).
    shard_failures: int = 0
    #: Dead shards brought back by the supervisor.
    respawns: int = 0


class LocalShard:
    """An in-process shard backend.

    Deterministic and instant — the test suite's harness for routing,
    backpressure, and degradation behavior without process management.
    """

    kind = "local"

    def __init__(self, index: int, server: AnalysisServer):
        self.index = index
        self.server = server
        self.respawns = 0

    @property
    def pid(self) -> Optional[int]:
        return os.getpid()

    @property
    def port(self) -> Optional[int]:
        return None

    def alive(self) -> bool:
        return True

    def request(
        self,
        method: str,
        path: str,
        body: Dict[str, Any],
        timeout: float,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Any, Dict[str, str]]:
        return self.server.handle_request(method, path, body, headers)

    def healthz(self, timeout: float = PROBE_TIMEOUT_SECONDS) -> Dict[str, Any]:
        _, payload, _ = self.server.dispatch("GET", "/healthz")
        return payload

    def respawn(self) -> bool:
        return False  # a local shard shares the router's life

    def close(self) -> None:
        self.server.close()


class ProcessShard:
    """One worker process plus the router-side plumbing to reach it."""

    kind = "process"

    def __init__(self, index: int, config: ICPConfig):
        self.index = index
        self._config_data = worker_config(config)
        self.respawns = 0
        self.process = None
        self.pid: Optional[int] = None
        self.port: Optional[int] = None
        self._lock = threading.Lock()
        self._spawn()

    def _spawn(self) -> None:
        ctx = spawn_context()
        parent, child = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=run_worker,
            args=(self._config_data, self.index, child),
            name=f"repro-serve-shard-{self.index}",
            daemon=True,
        )
        process.start()
        child.close()
        try:
            if not parent.poll(SPAWN_TIMEOUT_SECONDS):
                process.terminate()
                process.join(timeout=5)
                raise ShardUnavailable(
                    f"shard {self.index} did not report a port within "
                    f"{SPAWN_TIMEOUT_SECONDS:.0f}s"
                )
            self.pid, self.port = parent.recv()
        except (EOFError, OSError) as error:
            process.terminate()
            process.join(timeout=5)
            raise ShardUnavailable(
                f"shard {self.index} died during startup: {error}"
            ) from error
        finally:
            parent.close()
        self.process = process

    def alive(self) -> bool:
        process = self.process
        return process is not None and process.is_alive()

    def respawn(self) -> bool:
        """Replace a dead worker in place; returns True if one was spawned."""
        with self._lock:
            if self.alive():
                return False
            old = self.process
            if old is not None:
                old.join(timeout=1)  # reap the corpse before respawning
            self._spawn()
            self.respawns += 1
            return True

    def request(
        self,
        method: str,
        path: str,
        body: Dict[str, Any],
        timeout: float,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        port = self.port
        if port is None:
            raise ShardUnavailable(f"shard {self.index} has no socket")
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
        try:
            data = json.dumps(body).encode("utf-8") if body else None
            send_headers = dict(headers or {})
            if data:
                send_headers["Content-Type"] = "application/json"
            conn.request(method, path, body=data, headers=send_headers)
            response = conn.getresponse()
            raw = response.read()
            payload = json.loads(raw.decode("utf-8"))
            out: Dict[str, str] = {}
            retry_after = response.getheader("Retry-After")
            if retry_after is not None:
                out["Retry-After"] = retry_after
            return response.status, payload, out
        except (
            OSError,
            http.client.HTTPException,
            json.JSONDecodeError,
            UnicodeDecodeError,
        ) as error:
            # Covers refused/reset connections, truncated responses from a
            # killed worker, and garbage bytes: the client always gets a
            # clean JSON 503 from the router, never a partial payload.
            raise ShardUnavailable(
                f"shard {self.index}: {type(error).__name__}: {error}"
            ) from error
        finally:
            conn.close()

    def healthz(self, timeout: float = PROBE_TIMEOUT_SECONDS) -> Dict[str, Any]:
        status, payload, _ = self.request("GET", "/v1/healthz", {}, timeout)
        if status != 200:
            raise ShardUnavailable(f"shard {self.index} healthz: HTTP {status}")
        return payload

    def kill(self) -> None:
        """Forcibly kill the worker (chaos testing)."""
        process = self.process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=5)

    def close(self) -> None:
        with self._lock:
            process = self.process
            self.process = None
            if process is not None:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=5)
                if process.is_alive():  # wedged past SIGTERM: escalate
                    process.kill()
                    process.join(timeout=5)


class ShardRouter(JSONHTTPFront):
    """The front process of a sharded serve deployment.

    Owns the public socket, the hash ring, router-level backpressure, and
    the supervisor that respawns dead shards.  Exposes the same endpoint
    catalog as :class:`AnalysisServer` — clients cannot tell how many
    processes serve them — plus aggregated ``/healthz`` and ``/stats``.
    """

    def __init__(
        self,
        config: Optional[ICPConfig] = None,
        obs: Optional[Observability] = None,
        shards: Optional[Sequence] = None,
    ):
        self.config = config or ICPConfig()
        # Like the daemon: without an injected context the router builds
        # its own per the serve_* obs knobs (each shard builds one too).
        if obs is None or obs is NULL_OBS:
            obs = serve_observability(self.config)
        self.obs = obs
        self.log = StructuredLog(
            enabled=self.config.serve_log_enabled,
            slow_ms=self.config.serve_log_slow_ms,
            ring=self.config.serve_log_ring,
        )
        self.stats = RouterStats()
        if shards is not None:
            self._shards: List = list(shards)
        elif self.config.serve_shards >= 1:
            self._shards = [
                ProcessShard(index, self.config)
                for index in range(self.config.serve_shards)
            ]
        else:
            raise ValueError(
                "ShardRouter needs serve_shards >= 1 or injected shards"
            )
        self.ring = HashRing(len(self._shards))
        self._slots = threading.BoundedSemaphore(
            self.config.serve_max_queue * len(self._shards)
        )
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-serve-supervisor", daemon=True
        )
        self._supervisor.start()
        self.httpd = None
        self._thread = None

    @classmethod
    def local(
        cls,
        config: Optional[ICPConfig] = None,
        obs: Optional[Observability] = None,
        shards: int = 2,
    ) -> "ShardRouter":
        """A router over in-process :class:`LocalShard` backends (tests)."""
        config = config or ICPConfig()
        backends = [
            LocalShard(index, AnalysisServer(config, shard_index=index))
            for index in range(shards)
        ]
        return cls(config, obs, shards=backends)

    # ------------------------------------------------------------------
    # Shard lookup and supervision.
    # ------------------------------------------------------------------

    @property
    def shards(self) -> List:
        return list(self._shards)

    def shard_for(self, program_id: str):
        """The shard backend owning ``program_id``."""
        return self._shards[self.ring.shard_for(program_id)]

    def _supervise(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.config.serve_rebalance)
            self._wake.clear()
            if self._stop.is_set():
                return
            self._sweep()

    def _sweep(self) -> None:
        """Respawn every dead shard; the warm-start cost is the store's."""
        metrics = self.obs.metrics
        for shard in self._shards:
            if shard.alive():
                continue
            try:
                if shard.respawn():
                    self.stats.respawns += 1
                    if metrics.enabled:
                        metrics.counter("serve.shard.respawns").inc()
            except ShardUnavailable:
                self._wake.set()  # retry on the next sweep, eagerly
        if metrics.enabled:
            metrics.gauge("serve.shard.alive").set(
                sum(1 for shard in self._shards if shard.alive())
            )

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------

    def dispatch(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Route one request; returns (status, payload, extra headers)."""
        body = body or {}
        parsed = urlparse(path)
        parts = [p for p in parsed.path.split("/") if p]
        self.stats.requests += 1
        if self.obs.metrics.enabled:
            self.obs.metrics.counter("serve.shard.requests").inc()
        ctx = request_context.current()
        span = (
            self.obs.tracer.span(
                "serve.request",
                cat="serve",
                method=method,
                path=parsed.path,
                **(ctx.span_args() if ctx is not None else {}),
            )
            if self.obs.tracer.enabled
            else None
        )
        try:
            if span is not None:
                span.__enter__()
            if method == "GET" and parts == ["healthz"]:
                return 200, self._healthz_payload(), {}
            if method == "GET" and parts == ["stats"]:
                return 200, self._stats_payload(), {}
            if parts and parts[0] == "programs" and len(parts) in (2, 3):
                return self._proxy(method, path, parts[1], body, parsed.query)
            return (
                404,
                {"error": f"no route for {method} /{'/'.join(parts)}"},
                {},
            )
        finally:
            if span is not None:
                span.__exit__(None, None, None)

    def _unavailable(
        self, reason: str
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        return (
            503,
            {"error": reason, "retry_after": RETRY_AFTER_SECONDS},
            {"Retry-After": str(RETRY_AFTER_SECONDS)},
        )

    def _proxy_timeout(self, body: Dict[str, Any], query: str) -> float:
        """Socket budget for one proxied request: its deadline plus grace."""
        params = {k: v[-1] for k, v in parse_qs(query).items()}
        raw = body.get("timeout", params.get("timeout"))
        try:
            deadline = float(raw) if raw is not None else float(
                self.config.serve_timeout_seconds
            )
        except (TypeError, ValueError):
            # Malformed timeouts are the worker's 400 to give; proxy with
            # the default budget so it gets the chance.
            deadline = float(self.config.serve_timeout_seconds)
        return max(deadline, 0.0) + PROXY_GRACE_SECONDS

    def _proxy(
        self,
        method: str,
        path: str,
        program_id: str,
        body: Dict[str, Any],
        query: str,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        metrics = self.obs.metrics
        index = self.ring.shard_for(program_id)
        shard = self._shards[index]
        if not self._slots.acquire(blocking=False):
            self.stats.rejected += 1
            if metrics.enabled:
                metrics.counter("serve.shard.rejected").inc()
            return self._unavailable("router queue is full")
        try:
            timeout = self._proxy_timeout(body, query)
            # Dispatch sees canonical (unversioned) paths; the hop to the
            # shard speaks the supported /v1 surface so proxied requests
            # never look deprecated in shard logs.
            path = f"/{API_VERSION}{path}"
            # The proxy hop gets its own span id; the shard's request span
            # parents onto it via the X-Repro-Trace header, stitching the
            # cross-process trace: router request → proxy → shard request.
            ctx = request_context.current()
            hop_headers: Optional[Dict[str, str]] = None
            link: Dict[str, Any] = {}
            if ctx is not None:
                hop_span = request_context.new_span_id()
                hop_headers = ctx.child_headers(hop_span)
                link = {
                    "request_id": ctx.request_id,
                    "trace": ctx.trace_id,
                    "span": hop_span,
                    "parent": ctx.span,
                }
            if self.obs.tracer.enabled:
                with self.obs.tracer.span(
                    "serve.shard.proxy",
                    cat="serve",
                    shard=index,
                    method=method,
                    path=path,
                    **link,
                ):
                    status, payload, headers = shard.request(
                        method, path, body, timeout, headers=hop_headers
                    )
            else:
                status, payload, headers = shard.request(
                    method, path, body, timeout, headers=hop_headers
                )
            self.stats.proxied += 1
            if 200 <= status < 300:
                self.stats.completed += 1
            return status, payload, headers
        except ShardUnavailable as error:
            self.stats.shard_failures += 1
            if metrics.enabled:
                metrics.counter("serve.shard.failures").inc()
            self._wake.set()  # the supervisor respawns without waiting
            return self._unavailable(str(error))
        finally:
            self._slots.release()

    # ------------------------------------------------------------------
    # Aggregated introspection.
    # ------------------------------------------------------------------

    def _process_label(self) -> str:
        return "router"

    def _metrics_series(self):
        """Fleet exposition: router counters, per-shard series, aggregate.

        Three label shapes so one scrape answers every question:
        ``{process="router"}`` is the router's own registry, ``{shard=N}``
        is each live worker's, and the *unlabeled* series is the
        fleet-wide aggregate of the shards (counters summed, histograms
        merged) — the same shape a single-process daemon exposes.
        """
        series = [({"process": "router"}, self.obs.metrics.snapshot())]
        shard_snaps = []
        for shard in self._shards:
            if not shard.alive():
                continue
            try:
                status, payload, _ = shard.request(
                    "GET", "/debug/metrics", {}, PROBE_TIMEOUT_SECONDS
                )
            except ShardUnavailable:
                self._wake.set()
                continue
            if status != 200 or not isinstance(payload, dict):
                continue
            snapshot = payload.get("snapshot")
            if not isinstance(snapshot, dict):
                continue
            shard_snaps.append(snapshot)
            series.append(({"shard": str(shard.index)}, snapshot))
        if shard_snaps:
            series.append(({}, merge_snapshots(shard_snaps)))
        return series

    def export_trace(self) -> Dict[str, Any]:
        """One Chrome trace for the whole fleet.

        Merges each live shard's ``/debug/trace`` export into the
        router's own: shard events keep their pid (or get a synthetic one
        when the shard shares the router's pid, as LocalShards do, so
        per-track nesting stays balanced), and their timestamps are
        rebased from the shard's clock onto the router's via the
        exported ``epoch_wall`` instants.
        """
        merged = super().export_trace()
        events = merged["traceEvents"]
        own_pid = os.getpid()
        own_epoch = self.obs.tracer.epoch_wall
        for shard in self._shards:
            if not shard.alive():
                continue
            try:
                status, payload, _ = shard.request(
                    "GET", "/debug/trace", {}, PROBE_TIMEOUT_SECONDS
                )
            except ShardUnavailable:
                self._wake.set()
                continue
            if status != 200 or not isinstance(payload, dict):
                continue
            shard_events = payload.get("traceEvents")
            if not isinstance(shard_events, list):
                continue
            other = payload.get("otherData") or {}
            shard_pid = other.get("pid")
            pid = (
                shard_pid
                if isinstance(shard_pid, int) and shard_pid != own_pid
                else 1_000_000 + shard.index
            )
            epoch = other.get("epoch_wall")
            offset = (
                max(0.0, (epoch - own_epoch) * 1_000_000.0)
                if isinstance(epoch, (int, float))
                else 0.0
            )
            for event in shard_events:
                if not isinstance(event, dict):
                    continue
                stamped = dict(event)
                stamped["pid"] = pid
                ts = stamped.get("ts")
                if stamped.get("ph") != "M" and isinstance(ts, (int, float)):
                    stamped["ts"] = ts + offset
                events.append(stamped)
        return merged

    def _healthz_payload(self) -> Dict[str, Any]:
        """Per-shard liveness + store stats, aggregated for the fleet."""
        shards = []
        programs = 0
        all_ok = True
        for shard in self._shards:
            entry: Dict[str, Any] = {
                "shard": shard.index,
                "alive": shard.alive(),
                "pid": shard.pid,
                "port": shard.port,
                "respawns": shard.respawns,
                "programs": 0,
                "sessions": None,
                "store": None,
            }
            if entry["alive"]:
                try:
                    health = shard.healthz()
                    entry["programs"] = health.get("programs", 0)
                    entry["sessions"] = health.get("sessions")
                    entry["store"] = health.get("store")
                except ShardUnavailable:
                    entry["alive"] = False
            if not entry["alive"]:
                all_ok = False
                self._wake.set()
            programs += entry["programs"]
            shards.append(entry)
        return {
            "ok": all_ok,
            "programs": programs,
            "pid": os.getpid(),
            "shard": None,  # the router itself holds no programs
            "shards": shards,
        }

    def _stats_payload(self) -> Dict[str, Any]:
        shards = []
        for shard in self._shards:
            entry: Dict[str, Any] = {
                "shard": shard.index,
                "alive": shard.alive(),
                "respawns": shard.respawns,
                "stats": None,
            }
            if entry["alive"]:
                try:
                    status, payload, _ = shard.request(
                        "GET", "/stats", {}, PROBE_TIMEOUT_SECONDS
                    )
                    if status == 200:
                        entry["stats"] = payload
                except ShardUnavailable:
                    entry["alive"] = False
                    self._wake.set()
            shards.append(entry)
        return {
            "router": {
                "requests": self.stats.requests,
                "proxied": self.stats.proxied,
                "completed": self.stats.completed,
                "rejected": self.stats.rejected,
                "shard_failures": self.stats.shard_failures,
                "respawns": self.stats.respawns,
                "config": {
                    "shards": len(self._shards),
                    "max_queue": self.config.serve_max_queue
                    * len(self._shards),
                    "rebalance_seconds": self.config.serve_rebalance,
                },
            },
            "shards": shards,
        }

    def close(self) -> None:
        self._stop.set()
        self._wake.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5)
            self._supervisor = None
        super().close()
        for shard in self._shards:
            shard.close()


def create_server(
    config: Optional[ICPConfig] = None, obs: Optional[Observability] = None
):
    """The serve front the config asks for.

    ``serve_shards == 0`` keeps the single-process daemon;
    ``serve_shards >= 1`` fronts that many worker processes with a
    :class:`ShardRouter`.  Both speak the same HTTP surface.
    """
    config = config or ICPConfig()
    if config.serve_shards >= 1:
        return ShardRouter(config, obs=obs)
    return AnalysisServer(config, obs=obs)
