"""The ``repro-icp serve`` analysis daemon.

A long-lived HTTP front end over :class:`~repro.session.AnalysisSession`:
programs are loaded once, edits re-analyze incrementally, and summaries
persist in the shared :class:`~repro.store.SummaryStore` so restarts stay
warm.  See :mod:`repro.serve.daemon` for the endpoint catalog and the
backpressure/degradation model.
"""

from repro.serve.daemon import (
    RETRY_AFTER_SECONDS,
    AnalysisServer,
    ServeStats,
)

__all__ = ["AnalysisServer", "ServeStats", "RETRY_AFTER_SECONDS"]
