"""The ``repro-icp serve`` analysis daemon — single-process or sharded.

A long-lived HTTP front end over :class:`~repro.session.AnalysisSession`:
programs are loaded once, edits re-analyze incrementally, and summaries
persist in the shared :class:`~repro.store.SummaryStore` so restarts stay
warm.  See :mod:`repro.serve.daemon` for the endpoint catalog and the
backpressure/degradation model, and :mod:`repro.serve.router` for the
process-per-shard deployment (``serve_shards >= 1``): a consistent-hash
front router over disposable worker processes that coordinate only
through the shared store.  :func:`create_server` picks the right front
for a config.

Every front wraps its dispatch in the fleet observability envelope
(:mod:`repro.serve.context`): per-request ids echoed in
``X-Repro-Request-Id``, cross-process trace propagation over
``X-Repro-Trace``, Prometheus ``/metrics``, and a structured JSON
access log with a ``/debug/last`` ring.
"""

from repro.serve.context import (
    REQUEST_ID_HEADER,
    TRACE_HEADER,
    RequestContext,
)
from repro.serve.daemon import (
    API_VERSION,
    DEPRECATION_HEADER,
    RETRY_AFTER_SECONDS,
    AnalysisServer,
    JSONHTTPFront,
    ServeStats,
    serve_observability,
    split_api_version,
)
from repro.serve.hashring import HashRing
from repro.serve.router import (
    LocalShard,
    ProcessShard,
    RouterStats,
    ShardRouter,
    ShardUnavailable,
    create_server,
)

__all__ = [
    "API_VERSION",
    "AnalysisServer",
    "DEPRECATION_HEADER",
    "HashRing",
    "JSONHTTPFront",
    "LocalShard",
    "ProcessShard",
    "REQUEST_ID_HEADER",
    "RETRY_AFTER_SECONDS",
    "RequestContext",
    "RouterStats",
    "ServeStats",
    "ShardRouter",
    "ShardUnavailable",
    "TRACE_HEADER",
    "create_server",
    "serve_observability",
    "split_api_version",
]
