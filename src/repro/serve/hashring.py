"""Consistent hashing of program ids onto serve shards.

The front router (:mod:`repro.serve.router`) owns program placement: every
request for ``/programs/<id>`` must land on the one shard whose session
holds that program, and the mapping must survive router restarts and shard
respawns without a coordination service.  A consistent-hash ring over
SHA-256 gives exactly that:

- **Deterministic.**  Points are ``sha256(f"shard-{index}-{replica}")``;
  the same shard count always yields the same ring, in every process —
  Python's salted ``hash()`` is deliberately *not* used.
- **Stable under respawn.**  A shard's identity is its *index*, so a
  respawned shard re-occupies its old arc and warm-starts the same
  programs from the shared persistent store.
- **Gentle under resize.**  Growing ``N`` shards to ``N + 1`` remaps only
  the arcs the new shard's points claim (roughly ``1/(N+1)`` of keys);
  every other program stays put, its session still warm.

``replicas`` virtual points per shard smooth the arc lengths so load
spreads evenly even at small shard counts.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Tuple

#: Virtual points per shard; 64 keeps the max/min arc ratio small without
#: making ring construction or lookup measurable.
DEFAULT_REPLICAS = 64


def _point(label: str) -> int:
    """A ring position in [0, 2**64) derived from a stable label."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring mapping string keys to shard indices."""

    def __init__(self, shards: int, replicas: int = DEFAULT_REPLICAS):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.shards = shards
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for index in range(shards):
            for replica in range(replicas):
                points.append((_point(f"shard-{index}-{replica}"), index))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def shard_for(self, key: str) -> int:
        """The shard index owning ``key`` (the next point clockwise)."""
        where = bisect.bisect_right(self._points, _point(key))
        if where == len(self._points):
            where = 0  # wrap past the last point to the ring's start
        return self._owners[where]

    def distribution(self, keys) -> List[int]:
        """Per-shard key counts for ``keys`` (balance introspection)."""
        counts = [0] * self.shards
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing(shards={self.shards}, replicas={self.replicas})"
