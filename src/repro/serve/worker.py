"""Shard worker entrypoint for the sharded serve daemon.

One worker process = one :class:`~repro.serve.daemon.AnalysisServer` bound
to an ephemeral local socket.  The router spawns workers through the
spawn-safe context from :func:`repro.sched.pool.spawn_context` (never
fork: the router holds locks and runs threads), so this entrypoint must be
— and is — a module-level picklable.

A worker owns nothing durable: its sessions are rebuildable from source,
and its summaries live in the persistent store *shared by every shard*.
That makes workers disposable by design — the router SIGKILLs or loses one
and respawns a replacement, which warm-starts any previously seen program
from the store with zero engine runs.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict

from repro.core.config import ICPConfig


def worker_config(config: ICPConfig) -> Dict[str, Any]:
    """The config mapping a shard worker is spawned with.

    Identical to the router's config except for the listening socket: a
    worker binds an ephemeral loopback port (reported back through the
    spawn pipe) and never recursively shards.  The intra-analysis executor
    is pinned to threads — shard workers are daemonic processes, which the
    interpreter forbids from having children of their own (and a process
    pool per shard would just oversubscribe the cores the shards already
    divide).  The executor is a throughput knob, never a results knob, so
    reports stay byte-identical.

    The observability knobs (``serve_metrics``, ``serve_trace``,
    ``trace_propagate``, ``serve_log_*``) ride along unchanged: each
    worker self-constructs its own registry/tracer/logger from them, and
    the router aggregates over ``/debug/metrics`` and ``/debug/trace``.
    """
    data = config.to_dict()
    data.update(
        serve_host="127.0.0.1",
        serve_port=0,
        serve_shards=0,
        executor="thread",
    )
    return data


def run_worker(config_data: Dict[str, Any], shard_index: int, conn) -> None:
    """Process entrypoint: serve one shard until the process is killed.

    ``conn`` is the router's spawn pipe; the worker reports
    ``(pid, port)`` through it once its socket is bound, then serves
    forever.  Module-level so the spawn start method can pickle it.
    """
    from repro.serve.daemon import AnalysisServer

    config = ICPConfig.from_dict(config_data)
    server = AnalysisServer(config, shard_index=shard_index)
    _, port = server.start()
    conn.send((os.getpid(), port))
    conn.close()
    try:
        while True:
            # The accept loop runs on a daemon thread; the main thread just
            # keeps the process alive until the router terminates it.
            time.sleep(60)
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        server.close()
