"""Request identity and distributed trace context for the serve fleet.

Every request admitted by a serve front (router or single-process
daemon) carries a :class:`RequestContext`:

- ``request_id`` — minted at the edge (or honored from an incoming
  ``X-Repro-Request-Id`` header, so clients and upstream proxies can
  supply their own) and echoed on **every** response, error paths
  included;
- ``trace_id`` — the distributed trace this request belongs to; equal to
  the request id when the request starts a new trace;
- ``parent`` — the span id of the upstream caller (the router's proxy
  span, when the request arrived at a shard), carried in the
  ``X-Repro-Trace: <trace_id>:<parent_span_id>`` header;
- ``span`` — the span id minted for *this* process's request span.

The context travels intra-process in a thread-local (set by the HTTP
front before dispatch, copied onto analysis-pool threads by the daemon's
executor), so deep code — span creation, degraded-answer logging —
reaches it without signature plumbing.  Span ids are ``pid.counter`` so
a merged fleet trace never collides.
"""

from __future__ import annotations

import itertools
import os
import threading
import uuid
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

#: Request-identity header, echoed on every response.
REQUEST_ID_HEADER = "X-Repro-Request-Id"

#: Trace-context header: ``<trace_id>:<parent_span_id>``.
TRACE_HEADER = "X-Repro-Trace"

_SPAN_COUNTER = itertools.count(1)
_LOCAL = threading.local()


@dataclass
class RequestContext:
    """One request's identity as seen by one serving process."""

    request_id: str
    trace_id: str
    #: Span id of the upstream caller's span (None at the trace root).
    parent: Optional[str]
    #: Span id minted for this process's request span.
    span: str

    def span_args(self) -> Dict[str, Any]:
        """The link attributes this process's request span records."""
        args: Dict[str, Any] = {
            "request_id": self.request_id,
            "trace": self.trace_id,
            "span": self.span,
        }
        if self.parent is not None:
            args["parent"] = self.parent
        return args

    def child_headers(self, parent_span: str) -> Dict[str, str]:
        """Propagation headers for a downstream hop parented at ``parent_span``."""
        return {
            REQUEST_ID_HEADER: self.request_id,
            TRACE_HEADER: f"{self.trace_id}:{parent_span}",
        }


def mint_request_id() -> str:
    """A fresh 16-hex request id."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A process-unique span id (``pid.counter`` in hex)."""
    return f"{os.getpid():x}.{next(_SPAN_COUNTER):x}"


def _header(headers: Optional[Mapping[str, str]], name: str) -> Optional[str]:
    """Case-insensitive header lookup over dicts and HTTPMessage alike."""
    if headers is None:
        return None
    getter = getattr(headers, "get", None)
    if getter is None:
        return None
    value = getter(name)
    if value is not None:
        return value
    # Plain dicts are case-sensitive; fall back to a scan.
    lowered = name.lower()
    try:
        for key in headers:
            if str(key).lower() == lowered:
                return headers[key]
    except TypeError:
        return None
    return None


def _clean(value: Optional[str], limit: int = 128) -> Optional[str]:
    """A header value safe to echo and log (printable, bounded)."""
    if not value or not isinstance(value, str):
        return None
    value = value.strip()
    if not value or len(value) > limit or not value.isprintable():
        return None
    return value


def from_headers(headers: Optional[Mapping[str, str]]) -> RequestContext:
    """Build this hop's context from incoming headers (minting as needed)."""
    request_id = _clean(_header(headers, REQUEST_ID_HEADER))
    trace_raw = _clean(_header(headers, TRACE_HEADER))
    trace_id: Optional[str] = None
    parent: Optional[str] = None
    if trace_raw:
        trace_id, _, parent = trace_raw.partition(":")
        trace_id = trace_id or None
        parent = parent or None
        if trace_id is None:
            # A parent span without a trace id is meaningless and would
            # register as a dangling link in the merged trace; drop both.
            parent = None
    if request_id is None:
        request_id = mint_request_id()
    if trace_id is None:
        trace_id = request_id
    return RequestContext(
        request_id=request_id,
        trace_id=trace_id,
        parent=parent,
        span=new_span_id(),
    )


def set_current(ctx: Optional[RequestContext]) -> None:
    """Install ``ctx`` as this thread's request context."""
    _LOCAL.ctx = ctx


def current() -> Optional[RequestContext]:
    """This thread's request context (None outside a request)."""
    return getattr(_LOCAL, "ctx", None)


def clear_current() -> None:
    """Remove this thread's request context."""
    _LOCAL.ctx = None
