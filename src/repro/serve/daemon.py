"""The ``repro-icp serve`` analysis daemon.

One warm pipeline serving many programs: the daemon keeps a pool of
:class:`~repro.session.AnalysisSession` objects keyed by program id,
applies edits incrementally (the dirty-region fast path), and answers
analyze/report/diagnostics queries over a line-of-sight JSON HTTP API
(stdlib :class:`ThreadingHTTPServer`, no third-party dependencies).

Production behaviors:

- **Backpressure.**  Admitted-but-unfinished analysis work is bounded by
  ``serve_max_queue``; requests beyond it are rejected immediately with
  HTTP 503 and a ``Retry-After`` header instead of queuing without bound.
- **Deadlines with degradation.**  Every request carries a deadline
  (``serve_timeout_seconds`` default, per-request ``timeout`` override).
  An analyze/edit request that exceeds it degrades gracefully: the daemon
  answers with the *flow-insensitive* solution — cheap, sound, less
  precise — marked ``"degraded": true``, while the flow-sensitive run it
  abandoned keeps warming the session in the background.  Queued-but-
  unstarted work is cancelled outright.  Report/diagnostics queries have
  no cheaper fallback and answer HTTP 504.
- **Warm starts.**  With ``store_dir`` configured, every session's
  summary cache is backed by one shared persistent store, so a restarted
  daemon re-serves previously analyzed programs without re-running their
  engines.
- **Bounded residency.**  At most ``serve_max_sessions`` sessions stay
  resident; the least-recently-used program is dropped beyond that (its
  summaries survive in the store).

- **Observability.**  Every admitted request gets a fleet-unique
  ``request_id`` (honored from ``X-Repro-Request-Id`` when the caller —
  a client or the shard router — supplies one) echoed on every response,
  error paths included.  ``GET /metrics`` exposes the Prometheus text
  rendering of the server's metrics registry; a structured JSON-lines
  access log replaces the silenced ``http.server`` stderr chatter, with
  the most recent lines readable at ``GET /debug/last``.  With tracing
  on (``serve_trace``), request spans carry distributed-tracing link
  attributes and ``GET /debug/trace`` exports this process's Chrome
  trace for the router to merge into one fleet timeline.

Endpoints (JSON unless noted).  The supported spelling is versioned
under ``/v1``; the bare legacy paths keep answering as aliases but carry
a ``Deprecation: true`` response header::

    GET    /v1/healthz                    liveness, shard identity, store stats
    GET    /v1/stats                      server/store/session counters
    GET    /v1/metrics                    Prometheus text exposition
    GET    /v1/debug/last                 recent structured access-log lines
    GET    /v1/debug/metrics              raw registry snapshot (for the router)
    GET    /v1/debug/trace                Chrome trace export (serve_trace only)
    POST   /v1/programs/<id>              {source[, timeout]}: (re)load + analyze
    POST   /v1/programs/<id>/edits       {source | procedure+source[, timeout]}
    GET    /v1/programs/<id>/report      deterministic analysis report
    GET    /v1/programs/<id>/diagnostics interprocedural lint findings
    DELETE /v1/programs/<id>              drop the session

The ``repro-icp summary-server`` daemon (:mod:`repro.store.service`)
shares this front and adds ``GET/PUT/HEAD /v1/summaries/<key>``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import CancelledError, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.core.config import ICPConfig
from repro.errors import ReproError
from repro.obs import NULL_LOG, NULL_OBS, Observability, StructuredLog
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.promexport import CONTENT_TYPE, render_prometheus
from repro.obs.trace import NULL_TRACER, Tracer
from repro.serve import context as request_context
from repro.serve.context import REQUEST_ID_HEADER
from repro.session import AnalysisSession
from repro.store import PersistentCache, SummaryStore, store_from_config

#: Seconds clients should wait before retrying a 503-rejected request.
RETRY_AFTER_SECONDS = 1

#: The current HTTP API version; every route also answers under
#: ``/v1/...``.  Unversioned paths remain as deprecated aliases.
API_VERSION = "v1"

#: Header announcing that the request used a deprecated (unversioned)
#: path; clients should move to ``/v1/...``.
DEPRECATION_HEADER = "Deprecation"

#: Response payloads are JSON objects, except ``/metrics`` which is text
#: and ``/v1/summaries/<key>`` which is raw entry bytes.
Payload = Union[Dict[str, Any], str, bytes]

#: Request bodies are JSON objects, except summary uploads (raw bytes).
Body = Union[Dict[str, Any], bytes, None]


def split_api_version(path: str) -> Tuple[str, bool]:
    """Strip a leading ``/v1`` from ``path``; `(canonical, versioned)`.

    Routing is defined over *canonical* (unversioned) paths; the
    versioned spelling is the supported public surface and the bare one
    a deprecated alias, so :meth:`JSONHTTPFront.handle_request`
    normalizes before dispatch and stamps legacy requests with a
    ``Deprecation`` header.  The query string survives normalization.
    """
    parsed = urlparse(path)
    prefix = f"/{API_VERSION}"
    if parsed.path == prefix or parsed.path.startswith(prefix + "/"):
        rest = parsed.path[len(prefix):] or "/"
        if parsed.query:
            rest = f"{rest}?{parsed.query}"
        return rest, True
    return path, False


def serve_observability(config: ICPConfig) -> Observability:
    """The observability context a serving process builds for itself.

    Metrics and tracing are per-process concerns in the fleet (each
    worker owns its registry; the router aggregates), so servers
    self-construct from the ``serve_metrics`` / ``serve_trace`` knobs
    instead of receiving a context from the caller.
    """
    if not (config.serve_metrics or config.serve_trace):
        return NULL_OBS
    return Observability(
        tracer=Tracer() if config.serve_trace else NULL_TRACER,
        metrics=MetricsRegistry() if config.serve_metrics else NULL_REGISTRY,
    )


def _endpoint_class(method: str, path: str) -> str:
    """The latency-histogram bucket a request belongs to.

    Low cardinality on purpose: program ids collapse into the action
    (analyze/edits/report/...), unknown routes into ``other``.
    """
    parts = [p for p in urlparse(path).path.split("/") if p]
    if not parts:
        return "other"
    head = parts[0]
    if head in ("healthz", "stats", "metrics", "summaries"):
        return head
    if head == "debug":
        return "debug"
    if head == "programs":
        if len(parts) == 2:
            return "delete" if method == "DELETE" else "analyze"
        if len(parts) == 3 and parts[2] in ("edits", "report", "diagnostics"):
            return parts[2]
    return "other"


class _Rejected(Exception):
    """The bounded request queue is full (mapped to HTTP 503)."""


class _Deadline(Exception):
    """The request exceeded its deadline (degrade or HTTP 504)."""


@dataclass
class ServeStats:
    """Request counters of one daemon since start."""

    requests: int = 0
    completed: int = 0
    #: Rejected by backpressure (HTTP 503).
    rejected: int = 0
    #: Deadline-exceeded requests answered with the FI solution.
    degraded: int = 0
    #: Deadline-exceeded requests with no fallback (HTTP 504).
    timeouts: int = 0
    errors: int = 0
    #: Sessions dropped by the LRU residency bound.
    sessions_evicted: int = 0


class _Program:
    """One resident program: its session, source of record, and lock."""

    __slots__ = ("session", "source", "lock")

    def __init__(self, session: AnalysisSession, source: str):
        self.session = session
        self.source = source
        self.lock = threading.Lock()


class JSONHTTPFront:
    """Shared HTTP plumbing of the daemon and the shard router.

    Subclasses provide ``self.config`` (for the bind address) and a
    ``dispatch(method, path, body) -> (status, payload, headers)`` method;
    this base turns it into a :class:`ThreadingHTTPServer` with JSON
    request/response framing.  The socket path goes through
    :meth:`handle_request`, which wraps :meth:`dispatch` with the
    fleet-wide observability envelope: request-id minting/propagation,
    ``http.*`` metrics, the structured access log, and the shared
    ``/metrics`` + ``/debug/*`` endpoints.  Tests drive :meth:`dispatch`
    (bare routing) or :meth:`handle_request` (full envelope) directly, or
    go over a real socket via :meth:`start`; the CLI calls :meth:`serve`
    (blocking).
    """

    config: ICPConfig
    obs: Observability = NULL_OBS
    log: StructuredLog = NULL_LOG
    shard_index: Optional[int] = None
    httpd: Optional[ThreadingHTTPServer] = None
    _thread: Optional[threading.Thread] = None

    def dispatch(
        self, method: str, path: str, body: Body = None
    ) -> Tuple[int, Payload, Dict[str, str]]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # The observability envelope around dispatch.
    # ------------------------------------------------------------------

    def handle_request(
        self,
        method: str,
        path: str,
        body: Body = None,
        headers: Optional[Any] = None,
    ) -> Tuple[int, Payload, Dict[str, str]]:
        """One request, end to end: identity, metrics, log, dispatch.

        Accepts both the versioned (``/v1/...``) and the legacy bare
        spelling of every route; dispatch sees the canonical path, and
        legacy responses carry a ``Deprecation`` header.
        """
        canonical, versioned = split_api_version(path)
        ctx = None
        # LocalShards nest a shard's handle_request inside the router's on
        # one thread; restoring (not clearing) keeps the outer ctx intact.
        prev_ctx = request_context.current()
        if self.config.trace_propagate:
            ctx = request_context.from_headers(headers)
            request_context.set_current(ctx)
            if self.obs.tracer.enabled:
                self.obs.tracer.bind(
                    trace=ctx.trace_id, request_id=ctx.request_id
                )
        metrics = self.obs.metrics
        started = time.perf_counter()
        if metrics.enabled:
            metrics.counter("http.requests").inc()
            metrics.gauge("http.in_flight").add(1)
        status, payload, extra = 500, {"error": "internal"}, {}
        try:
            handled = self._handle_obs_endpoint(method, canonical)
            if handled is not None:
                status, payload, extra = handled
            else:
                status, payload, extra = self.dispatch(
                    method, canonical, body
                )
        except Exception as error:  # noqa: BLE001 - the front must survive
            status, payload, extra = (
                500,
                {"error": f"{type(error).__name__}: {error}"},
                {},
            )
        finally:
            latency_ms = (time.perf_counter() - started) * 1000.0
            if metrics.enabled:
                metrics.gauge("http.in_flight").add(-1)
                metrics.counter(f"http.status.{status}").inc()
                metrics.histogram(
                    f"http.latency.{_endpoint_class(method, canonical)}"
                ).observe(latency_ms)
            if ctx is not None:
                if self.obs.tracer.enabled:
                    self.obs.tracer.unbind()
                request_context.set_current(prev_ctx)
        degraded = isinstance(payload, dict) and bool(payload.get("degraded"))
        if self.log.enabled:
            self.log.access(
                method=method,
                path=path,
                status=status,
                latency_ms=latency_ms,
                request_id=ctx.request_id if ctx is not None else None,
                degraded=degraded,
            )
        extra = dict(extra)
        if ctx is not None:
            extra[REQUEST_ID_HEADER] = ctx.request_id
        if not versioned:
            extra[DEPRECATION_HEADER] = "true"
        return status, payload, extra

    def _handle_obs_endpoint(
        self, method: str, path: str
    ) -> Optional[Tuple[int, Payload, Dict[str, str]]]:
        """Route the shared ``/metrics`` + ``/debug/*`` endpoints (or None)."""
        if method != "GET":
            return None
        parsed = urlparse(path)
        parts = [p for p in parsed.path.split("/") if p]
        if parts == ["metrics"]:
            if not self.obs.metrics.enabled:
                return 404, {"error": "metrics disabled"}, {}
            text = render_prometheus(self._metrics_series())
            return 200, text, {"Content-Type": CONTENT_TYPE}
        if parts == ["debug", "last"]:
            query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
            try:
                limit = int(query["n"]) if "n" in query else None
            except ValueError:
                return 400, {"error": "n must be an integer"}, {}
            return 200, {"entries": self.log.last(limit)}, {}
        if parts == ["debug", "metrics"]:
            if not self.obs.metrics.enabled:
                return 404, {"error": "metrics disabled"}, {}
            return (
                200,
                {
                    "pid": os.getpid(),
                    "shard": self.shard_index,
                    "epoch_wall": self.obs.tracer.epoch_wall,
                    "snapshot": self.obs.metrics.snapshot(),
                },
                {},
            )
        if parts == ["debug", "trace"]:
            if not self.obs.tracer.enabled:
                return 404, {"error": "tracing disabled"}, {}
            return 200, self.export_trace(), {}
        return None

    def _process_label(self) -> str:
        if self.shard_index is not None:
            return f"shard-{self.shard_index}"
        return type(self).__name__

    def _metrics_series(self):
        """(labels, snapshot) pairs for ``/metrics``; routers override."""
        return [({}, self.obs.metrics.snapshot())]

    def export_trace(self) -> Dict[str, Any]:
        """This process's Chrome trace, pid-stamped for fleet merging."""
        tracer = self.obs.tracer
        pid = os.getpid()
        events: list = [
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": "meta",
                "args": {"name": f"repro-icp {self._process_label()}"},
            }
        ]
        for event in tracer.events():
            stamped = dict(event)
            stamped["pid"] = pid
            events.append(stamped)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro-icp",
                "pid": pid,
                "shard": self.shard_index,
                "epoch_wall": tracer.epoch_wall,
            },
        }

    def _make_httpd(self) -> ThreadingHTTPServer:
        front = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def _finish(self, status, payload, headers, head=False):
                headers = dict(headers)
                if isinstance(payload, bytes):
                    data = payload
                    content_type = headers.pop(
                        "Content-Type", "application/octet-stream"
                    )
                elif isinstance(payload, str):
                    data = payload.encode("utf-8")
                    content_type = headers.pop(
                        "Content-Type", "text/plain; charset=utf-8"
                    )
                else:
                    data = (
                        json.dumps(payload, sort_keys=True) + "\n"
                    ).encode("utf-8")
                    content_type = headers.pop(
                        "Content-Type", "application/json"
                    )
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                for name, value in headers.items():
                    self.send_header(name, value)
                self.end_headers()
                if not head:
                    self.wfile.write(data)

            def _body(self):
                length = int(self.headers.get("Content-Length") or 0)
                content_type = (
                    (self.headers.get("Content-Type") or "")
                    .split(";")[0]
                    .strip()
                    .lower()
                )
                if content_type == "application/octet-stream":
                    # Summary uploads: raw entry bytes, never JSON.
                    return self.rfile.read(length) if length else b""
                if not length:
                    return {}
                raw = self.rfile.read(length)
                blob = json.loads(raw.decode("utf-8"))
                if not isinstance(blob, dict):
                    raise ValueError("request body must be a JSON object")
                return blob

            def _serve(self, method):
                try:
                    body = self._body()
                except (ValueError, UnicodeDecodeError) as error:
                    self._finish(
                        400, {"error": f"malformed JSON body: {error}"}, {}
                    )
                    return
                status, payload, headers = front.handle_request(
                    method, self.path, body, self.headers
                )
                # HEAD answers with the same headers (Content-Length
                # included) but must not write a body.
                self._finish(status, payload, headers, head=method == "HEAD")

            def do_GET(self):  # noqa: N802 - http.server API
                self._serve("GET")

            def do_HEAD(self):  # noqa: N802
                self._serve("HEAD")

            def do_POST(self):  # noqa: N802
                self._serve("POST")

            def do_PUT(self):  # noqa: N802
                self._serve("PUT")

            def do_DELETE(self):  # noqa: N802
                self._serve("DELETE")

            def log_message(self, format, *args):  # noqa: A002
                # Silenced: the structured JSON access log emitted by
                # handle_request replaces http.server's stderr lines.
                pass

        httpd = ThreadingHTTPServer(
            (self.config.serve_host, self.config.serve_port), Handler
        )
        httpd.daemon_threads = True
        return httpd

    def start(self) -> Tuple[str, int]:
        """Serve on a background thread; returns the bound (host, port)."""
        self.httpd = self._make_httpd()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name=f"{type(self).__name__}-accept",
            daemon=True,
        )
        self._thread.start()
        return self.httpd.server_address[0], self.httpd.server_address[1]

    def serve(self) -> None:
        """Serve on the calling thread until interrupted."""
        self.httpd = self._make_httpd()
        try:
            self.httpd.serve_forever()
        finally:
            self.httpd.server_close()

    def close(self) -> None:
        if self.httpd is not None:
            self.httpd.shutdown()
            self.httpd.server_close()
            self.httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


class AnalysisServer(JSONHTTPFront):
    """The daemon's engine room, independent of the HTTP plumbing.

    With ``shard_index`` set, this server is one shard of a
    :class:`~repro.serve.router.ShardRouter` deployment and reports its
    identity through ``/healthz``.
    """

    def __init__(
        self,
        config: Optional[ICPConfig] = None,
        obs: Optional[Observability] = None,
        shard_index: Optional[int] = None,
    ):
        self.config = config or ICPConfig()
        # Callers with an instrumented context (tests, embedding) pass one;
        # otherwise the server builds its own per the serve_* obs knobs.
        if obs is None or obs is NULL_OBS:
            obs = serve_observability(self.config)
        self.obs = obs
        self.shard_index = shard_index
        self.log = StructuredLog(
            enabled=self.config.serve_log_enabled,
            slow_ms=self.config.serve_log_slow_ms,
            ring=self.config.serve_log_ring,
            shard=shard_index,
        )
        self.stats = ServeStats()
        # store_from_config wires the whole tier stack: local blob
        # directory plus, with store_remote_url set, the fail-open
        # fleet-shared remote client.
        self.store: Optional[SummaryStore] = store_from_config(
            self.config, obs=self.obs
        )
        self._programs: "OrderedDict[str, _Program]" = OrderedDict()
        self._programs_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.serve_workers,
            thread_name_prefix="repro-serve",
        )
        self._slots = threading.BoundedSemaphore(self.config.serve_max_queue)
        self.httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Session pool.
    # ------------------------------------------------------------------

    def _session_cache(self):
        if self.store is None:
            return None
        # Each session gets its own memory tier over the one shared store:
        # programs never collide in memory, summaries dedupe on disk.
        return PersistentCache(self.store)

    def _get_program(self, program_id: str) -> _Program:
        with self._programs_lock:
            program = self._programs.get(program_id)
            if program is None:
                raise KeyError(program_id)
            self._programs.move_to_end(program_id)
            return program

    def _put_program(self, program_id: str, program: _Program) -> None:
        with self._programs_lock:
            self._programs[program_id] = program
            self._programs.move_to_end(program_id)
            while len(self._programs) > self.config.serve_max_sessions:
                self._programs.popitem(last=False)
                self.stats.sessions_evicted += 1
            if self.obs.metrics.enabled:
                self.obs.metrics.gauge("serve.programs").set(
                    len(self._programs)
                )

    # ------------------------------------------------------------------
    # Bounded execution with deadlines.
    # ------------------------------------------------------------------

    def _execute(self, job, timeout: float):
        """Run ``job`` on the worker pool under backpressure + deadline."""
        if not self._slots.acquire(blocking=False):
            raise _Rejected()
        # Carry the request identity onto the pool thread so engine-phase
        # spans recorded deep in the pipeline keep the trace/request ids.
        ctx = request_context.current()
        bound = self.obs.tracer.bound()

        def run():
            request_context.set_current(ctx)
            if bound:
                self.obs.tracer.bind(**bound)
            try:
                return job()
            finally:
                if bound:
                    self.obs.tracer.unbind()
                request_context.clear_current()
                self._slots.release()

        try:
            future = self._pool.submit(run)
        except BaseException:
            self._slots.release()
            raise
        try:
            return future.result(timeout=timeout)
        except FutureTimeout:
            # Queued-but-unstarted work is cancelled outright; running work
            # is abandoned to finish warming the session in the background
            # (Python threads cannot be killed), its slot released by run().
            if future.cancel():
                self._slots.release()
            raise _Deadline()
        except CancelledError:
            raise _Deadline()

    def _deadline_of(self, body: Dict[str, Any], query: Dict[str, Any]) -> float:
        raw = body.get("timeout", query.get("timeout"))
        if raw is None:
            return float(self.config.serve_timeout_seconds)
        try:
            timeout = float(raw)
        except (TypeError, ValueError):
            raise ValueError(f"timeout must be a number, got {raw!r}")
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        return timeout

    # ------------------------------------------------------------------
    # The flow-insensitive degradation path.
    # ------------------------------------------------------------------

    def _fi_solution(self, source: str) -> Dict[str, Any]:
        """The cheap, engine-free solution a deadline-exceeded analyze gets.

        Runs only the linear whole-program passes (parse, symbols, PCG,
        aliasing, MOD/REF, flow-insensitive ICP) on the handler thread —
        sound, less precise, and fast enough to answer under pressure.
        """
        from repro.callgraph.pcg import build_pcg
        from repro.core.flow_insensitive import flow_insensitive_icp
        from repro.lang.parser import parse_program
        from repro.lang.symbols import collect_symbols
        from repro.lang.validate import validate_program
        from repro.summary.alias import compute_aliases
        from repro.summary.modref import compute_modref

        config = self.config
        program = parse_program(source)
        validate_program(
            program,
            require_main=(config.entry == "main"),
            allow_missing=config.allow_missing,
        )
        symbols = collect_symbols(program)
        pcg = build_pcg(program, symbols, config.entry)
        aliases = compute_aliases(program, symbols, pcg)
        modref = compute_modref(program, symbols, pcg, aliases)
        fi = flow_insensitive_icp(program, symbols, pcg, modref, config)
        return {
            "degraded": True,
            "method": "fi",
            "procedures": len(pcg.nodes),
            "call_edges": len(pcg.edges),
            "constant_formals": [
                {"proc": proc, "formal": formal}
                for proc, formal in fi.constant_formals()
            ],
            "constant_globals": {
                name: value
                for name, value in sorted(fi.global_constants.items())
            },
        }

    # ------------------------------------------------------------------
    # Request handlers.
    # ------------------------------------------------------------------

    def _analyze_payload(self, program: _Program, changed: Optional[int]) -> Dict[str, Any]:
        session = program.session
        result = session.result
        stats = session.stats
        payload: Dict[str, Any] = {
            "degraded": False,
            "method": "fs",
            "procedures": stats.last_procs,
            "call_edges": len(result.pcg.edges),
            "constant_formals": [
                {
                    "proc": proc,
                    "formal": formal,
                    "value": result.fs.entry_formals[(proc, formal)].const_value,
                }
                for proc, formal in result.fs.constant_formals()
            ],
            "session": {
                "analyses": stats.analyses,
                "dirty": stats.last_dirty,
                "reused": stats.last_reused,
                "cached": stats.last_cached,
                "engine_runs": stats.last_engine_runs,
                "reuse_rate": stats.reuse_rate,
            },
        }
        if changed is not None:
            payload["changed"] = changed
        return payload

    def _handle_load(
        self, program_id: str, body: Dict[str, Any], deadline: float
    ) -> Tuple[int, Dict[str, Any]]:
        source = body.get("source")
        if not isinstance(source, str) or not source.strip():
            return 400, {"error": "body must carry a non-empty 'source'"}

        def job() -> Tuple[int, Dict[str, Any]]:
            try:
                existing = self._get_program(program_id)
            except KeyError:
                existing = None
            if existing is not None:
                with existing.lock:
                    changed = existing.session.sync(source)
                    existing.source = source
                    if changed or existing.session.result is None:
                        existing.session.analyze()
                    return 200, self._analyze_payload(existing, changed)
            session = AnalysisSession(
                source, self.config, obs=self.obs, cache=self._session_cache()
            )
            program = _Program(session, source)
            with program.lock:
                session.analyze()
                self._put_program(program_id, program)
                return 200, self._analyze_payload(program, None)

        try:
            return self._execute(job, deadline)
        except _Deadline:
            self.stats.degraded += 1
            if self.obs.metrics.enabled:
                self.obs.metrics.counter("serve.degraded").inc()
            return 200, self._fi_solution(source)

    def _handle_edit(
        self, program_id: str, body: Dict[str, Any], deadline: float
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            program = self._get_program(program_id)
        except KeyError:
            return 404, {"error": f"unknown program {program_id!r}"}
        source = body.get("source")
        procedure = body.get("procedure")
        if not isinstance(source, str) or not source.strip():
            return 400, {"error": "body must carry a non-empty 'source'"}

        def job() -> Tuple[int, Dict[str, Any]]:
            with program.lock:
                if procedure is not None:
                    changed = int(program.session.update(procedure, source))
                else:
                    changed = program.session.sync(source)
                    program.source = source
                if changed or program.session.result is None:
                    program.session.analyze()
                return 200, self._analyze_payload(program, changed)

        try:
            return self._execute(job, deadline)
        except _Deadline:
            self.stats.degraded += 1
            if self.obs.metrics.enabled:
                self.obs.metrics.counter("serve.degraded").inc()
            # The edit is already applied to the session (or will be when
            # the abandoned job lands); answer from the edited source.
            fallback = source if procedure is None else program.source
            return 200, self._fi_solution(fallback)

    def _handle_report(
        self, program_id: str, deadline: float
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            program = self._get_program(program_id)
        except KeyError:
            return 404, {"error": f"unknown program {program_id!r}"}

        def job() -> Tuple[int, Dict[str, Any]]:
            with program.lock:
                if program.session.result is None:
                    program.session.analyze()
                return 200, {
                    "program": program_id,
                    "report": program.session.report(),
                }

        return self._execute(job, deadline)

    def _handle_diagnostics(
        self, program_id: str, deadline: float
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            program = self._get_program(program_id)
        except KeyError:
            return 404, {"error": f"unknown program {program_id!r}"}

        def job() -> Tuple[int, Dict[str, Any]]:
            with program.lock:
                diag = program.session.diagnostics()
            return 200, {
                "program": program_id,
                "counts": diag.counts,
                "findings": [
                    {
                        "rule": f.rule_id,
                        "severity": f.severity,
                        "message": f.message,
                        "proc": f.proc,
                        "line": f.line,
                        "column": f.column,
                    }
                    for f in diag.findings
                ],
            }

        return self._execute(job, deadline)

    def _store_payload(self) -> Optional[Dict[str, Any]]:
        """Store stats for ``/healthz`` and ``/stats`` (None = no store)."""
        if self.store is None:
            return None
        s = self.store.stats
        payload = {
            "dir": self.store.root,
            "hits": s.hits,
            "misses": s.misses,
            "writes": s.writes,
            "evictions": s.evictions,
            "corrupt_dropped": s.corrupt_dropped,
            "bytes": s.bytes,
            "entries": s.entries,
            "dedup_writes": s.dedup_writes,
            "codec": self.store.codec,
        }
        if self.store.remote is not None:
            payload["remote"] = {
                "url": self.store.remote.url,
                "hits": s.remote_hits,
                "misses": s.remote_misses,
                "errors": s.remote_errors,
            }
        return payload

    def _healthz_payload(self) -> Dict[str, Any]:
        """Liveness, shard identity, session residency, and store stats.

        The router aggregates one of these per shard; a single-process
        daemon reports itself with ``"shard": null``.
        """
        with self._programs_lock:
            resident = len(self._programs)
        return {
            "ok": True,
            "programs": resident,
            "pid": os.getpid(),
            "shard": self.shard_index,
            "sessions": {
                "resident": resident,
                "max": self.config.serve_max_sessions,
                "evicted": self.stats.sessions_evicted,
            },
            "store": self._store_payload(),
        }

    def _stats_payload(self) -> Dict[str, Any]:
        with self._programs_lock:
            programs = list(self._programs)
        payload: Dict[str, Any] = {
            "programs": programs,
            "requests": self.stats.requests,
            "completed": self.stats.completed,
            "rejected": self.stats.rejected,
            "degraded": self.stats.degraded,
            "timeouts": self.stats.timeouts,
            "errors": self.stats.errors,
            "sessions_evicted": self.stats.sessions_evicted,
            "config": {
                "workers": self.config.serve_workers,
                "max_queue": self.config.serve_max_queue,
                "timeout_seconds": self.config.serve_timeout_seconds,
                "max_sessions": self.config.serve_max_sessions,
            },
        }
        store = self._store_payload()
        if store is not None:
            payload["store"] = store
        return payload

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------

    def dispatch(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Route one request; returns (status, payload, extra headers)."""
        body = body if isinstance(body, dict) else {}
        parsed = urlparse(path)
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        parts = [p for p in parsed.path.split("/") if p]
        self.stats.requests += 1
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter("serve.requests").inc()

        try:
            deadline = self._deadline_of(body, query)
        except ValueError as error:
            self.stats.errors += 1
            return 400, {"error": str(error)}, {}

        ctx = request_context.current()
        span = (
            self.obs.tracer.span(
                "serve.request",
                cat="serve",
                method=method,
                path=parsed.path,
                **(ctx.span_args() if ctx is not None else {}),
            )
            if self.obs.tracer.enabled
            else None
        )
        try:
            if span is not None:
                span.__enter__()
            status, payload = self._route(method, parts, body, deadline)
        except _Rejected:
            self.stats.rejected += 1
            if metrics.enabled:
                metrics.counter("serve.rejected").inc()
            return (
                503,
                {
                    "error": "analysis queue is full",
                    "retry_after": RETRY_AFTER_SECONDS,
                },
                {"Retry-After": str(RETRY_AFTER_SECONDS)},
            )
        except _Deadline:
            self.stats.timeouts += 1
            if metrics.enabled:
                metrics.counter("serve.timeouts").inc()
            return 504, {"error": "deadline exceeded"}, {}
        except (ReproError, ValueError) as error:
            self.stats.errors += 1
            if metrics.enabled:
                metrics.counter("serve.errors").inc()
            return 400, {"error": str(error)}, {}
        except Exception as error:  # noqa: BLE001 - the daemon must survive
            self.stats.errors += 1
            if metrics.enabled:
                metrics.counter("serve.errors").inc()
            return 500, {"error": f"{type(error).__name__}: {error}"}, {}
        finally:
            if span is not None:
                span.__exit__(None, None, None)
        if 200 <= status < 300:
            self.stats.completed += 1
            if metrics.enabled:
                metrics.counter("serve.completed").inc()
        else:
            self.stats.errors += 1
        return status, payload, {}

    def _route(
        self,
        method: str,
        parts,
        body: Dict[str, Any],
        deadline: float,
    ) -> Tuple[int, Dict[str, Any]]:
        if method == "GET" and parts == ["healthz"]:
            return 200, self._healthz_payload()
        if method == "GET" and parts == ["stats"]:
            return 200, self._stats_payload()
        if len(parts) == 2 and parts[0] == "programs":
            program_id = parts[1]
            if method == "POST":
                return self._handle_load(program_id, body, deadline)
            if method == "DELETE":
                with self._programs_lock:
                    dropped = self._programs.pop(program_id, None)
                if dropped is None:
                    return 404, {"error": f"unknown program {program_id!r}"}
                return 200, {"ok": True, "program": program_id}
        if len(parts) == 3 and parts[0] == "programs":
            program_id, action = parts[1], parts[2]
            if method == "POST" and action == "edits":
                return self._handle_edit(program_id, body, deadline)
            if method == "GET" and action == "report":
                return self._handle_report(program_id, deadline)
            if method == "GET" and action == "diagnostics":
                return self._handle_diagnostics(program_id, deadline)
        return 404, {"error": f"no route for {method} /{'/'.join(parts)}"}

    def close(self) -> None:
        super().close()
        self._pool.shutdown(wait=False)
        if self.store is not None:
            self.store.close()
