"""Exception hierarchy shared by every subsystem.

All errors raised by this package derive from :class:`ReproError`, so a
downstream user can catch one type.  Frontend errors carry a source position.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourcePos:
    """A position in MiniF source text (1-based line and column)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class FrontendError(ReproError):
    """An error detected while lexing, parsing, or validating MiniF source."""

    def __init__(self, message: str, pos: SourcePos | None = None):
        self.message = message
        self.pos = pos
        location = f" at {pos}" if pos is not None else ""
        super().__init__(f"{message}{location}")


class LexError(FrontendError):
    """Invalid character or malformed token in the source text."""


class ParseError(FrontendError):
    """The token stream does not match the MiniF grammar."""


class ValidationError(FrontendError):
    """A semantic rule is violated (unknown procedure, arity mismatch, ...)."""


class AnalysisError(ReproError):
    """An internal invariant of an analysis was violated."""


class InterpreterError(ReproError):
    """A runtime error in the reference interpreter (e.g. division by zero)."""


class StepLimitExceeded(InterpreterError):
    """The interpreter's step budget was exhausted (likely a long loop)."""
