"""Command-line interface: ``repro-icp`` (or ``python -m repro.cli``).

Subcommands::

    analyze FILE   run the Figure 2 pipeline and report discovered constants
    optimize FILE  print the transformed (constant-substituted) program
    run FILE       execute the program with the reference interpreter
    tables [N..]   regenerate the paper's tables over the synthetic suite
    bench [NAME..] analyze the synthetic suite in one batched pipeline run

Common analysis flags include ``--jobs N`` (wavefront-parallel analysis
over N workers; 0 means all cores) and ``--cache-stats`` (enable the
procedure-summary cache and print its hit/miss/invalidation counters).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.config import ICPConfig
from repro.core.driver import analyze_program
from repro.errors import ReproError
from repro.interp import run_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _load(path: str):
    """Parse a source file; .f/.for/.f77 go through the FORTRAN front end."""
    text = _read(path)
    if path.lower().endswith((".f", ".for", ".f77")):
        from repro.lang.fortran import parse_fortran

        return parse_fortran(text)
    return parse_program(text)


def _job_count(value: str) -> int:
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = all cores), got {count}"
        )
    return count


def _config_from(args: argparse.Namespace) -> ICPConfig:
    return ICPConfig(
        propagate_floats=not args.no_floats,
        propagate_returns=args.returns or args.exit_values,
        propagate_exit_values=args.exit_values,
        engine=args.engine,
        workers=args.jobs,
        cache=args.cache_stats,
    )


def _cmd_analyze(args: argparse.Namespace) -> int:
    result = analyze_program(_load(args.file), _config_from(args))
    if args.report:
        from repro.core.report import full_report

        print(full_report(result))
    else:
        print(result.summary())
    if args.cache_stats and not args.report:
        from repro.core.report import scheduling_report

        print()
        print(scheduling_report(result))
    if args.timings:
        print("\nphase timings (seconds):")
        for phase, seconds in result.timings.items():
            print(f"  {phase:<10} {seconds:.6f}")
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    from repro.core.report import pcg_to_dot

    result = analyze_program(_load(args.file), _config_from(args))
    print(pcg_to_dot(result))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.core.optimize import optimize_program

    result = optimize_program(
        _load(args.file),
        _config_from(args),
        clone=args.clone,
        inline=args.inline,
        sweep=not args.no_sweep,
    )
    print(pretty_program(result.program), end="")
    print(f"# {result.summary()}", file=sys.stderr)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    program = _load(args.file)
    outcome = run_program(program, max_steps=args.max_steps)
    for value in outcome.outputs:
        print(value)
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.bench import tables

    wanted = set(args.numbers or [1, 2, 3, 4, 5])
    if 1 in wanted:
        print(tables.format_table1(tables.table1_rows(), "Table 1: call-site candidates"))
        print()
    if 2 in wanted:
        print(tables.format_table2(tables.table2_rows(), "Table 2: propagated constants"))
        print()
    if 3 in wanted:
        print(
            tables.format_table1(
                tables.table3_rows(), "Table 3: candidates (GT subset, no floats)"
            )
        )
        print()
    if 4 in wanted:
        print(
            tables.format_table2(
                tables.table4_rows(), "Table 4: propagated (GT subset, no floats)"
            )
        )
        print()
    if 5 in wanted:
        print(tables.format_table5(tables.table5_rows()))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.suite import SUITE, analyze_suite
    from repro.core.metrics import scheduling_metrics

    names = args.names or sorted(SUITE)
    try:
        run = analyze_suite(names, _config_from(args), scale=args.scale)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 1
    print(
        f"{'benchmark':<16} {'procs':>5} {'edges':>5} {'fs-formals':>10} "
        f"{'run':>5} {'cached':>6}"
    )
    for name, result in run.results.items():
        row = scheduling_metrics(name, result.sched)
        print(
            f"{name:<16} {len(result.pcg.nodes):>5} {len(result.pcg.edges):>5} "
            f"{len(result.fs.constant_formals()):>10} "
            f"{row.tasks_run:>5} {row.tasks_cached:>6}"
        )
    print(
        f"{'total':<16} {'':>5} {'':>5} {'':>10} "
        f"{run.tasks_run:>5} {run.tasks_cached:>6}"
    )
    if run.cache_stats is not None:
        cache = run.cache_stats
        print(
            f"summary cache: {cache.hits} hits, {cache.misses} misses, "
            f"{cache.invalidations} invalidations "
            f"(hit rate {cache.hit_rate:.0%}, {cache.entries} entries)"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-icp",
        description=(
            "Flow-sensitive interprocedural constant propagation "
            "(Carini & Hind, PLDI 1995)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--no-floats", action="store_true",
                       help="disable floating-point constant propagation")
        p.add_argument("--returns", action="store_true",
                       help="enable the return-constant extension")
        p.add_argument("--exit-values", action="store_true",
                       help="also propagate constant exit values of modified "
                            "formals and globals (implies --returns)")
        p.add_argument("--engine", choices=("scc", "simple"), default="scc",
                       help="intraprocedural engine (default: scc)")
        p.add_argument("--jobs", type=_job_count, default=1, metavar="N",
                       help="worker pool size for wavefront-parallel "
                            "analysis (default: 1 = serial; 0 = all cores)")
        p.add_argument("--cache-stats", action="store_true",
                       help="enable the procedure-summary cache and report "
                            "its hit/miss/invalidation counters")

    analyze = sub.add_parser("analyze", help="report interprocedural constants")
    analyze.add_argument("file")
    analyze.add_argument("--timings", action="store_true")
    analyze.add_argument("--report", action="store_true",
                         help="detailed per-procedure report")
    common(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    graph = sub.add_parser("graph", help="print the PCG as Graphviz DOT")
    graph.add_argument("file")
    common(graph)
    graph.set_defaults(func=_cmd_graph)

    optimize = sub.add_parser("optimize", help="print the transformed program")
    optimize.add_argument("file")
    optimize.add_argument("--clone", action="store_true",
                          help="clone procedures whose sites disagree on constants")
    optimize.add_argument("--inline", action="store_true",
                          help="inline small leaf procedures first")
    optimize.add_argument("--no-sweep", action="store_true",
                          help="keep dead assignments after substitution")
    common(optimize)
    optimize.set_defaults(func=_cmd_optimize)

    run = sub.add_parser("run", help="execute with the reference interpreter")
    run.add_argument("file")
    run.add_argument("--max-steps", type=int, default=1_000_000)
    run.set_defaults(func=_cmd_run)

    tables = sub.add_parser("tables", help="regenerate the paper's tables")
    tables.add_argument("numbers", nargs="*", type=int, choices=range(1, 6),
                        metavar="N", help="table numbers (default: all)")
    tables.set_defaults(func=_cmd_tables)

    bench = sub.add_parser(
        "bench", help="analyze the synthetic suite in one batched run"
    )
    bench.add_argument("names", nargs="*", metavar="NAME",
                       help="benchmark names (default: the whole suite)")
    bench.add_argument("--scale", type=int, default=1,
                       help="pattern-count multiplier (default: 1)")
    common(bench)
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
