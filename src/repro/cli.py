"""Command-line interface: ``repro-icp`` (or ``python -m repro.cli``).

Subcommands::

    analyze FILE   run the Figure 2 pipeline and report discovered constants
    check FILE..   run the interprocedural lint checks (text/JSON/SARIF)
    optimize FILE  print the transformed (constant-substituted) program
    run FILE       execute the program with the reference interpreter
    tables [N..]   regenerate the paper's tables over the synthetic suite
    bench [NAME..] analyze the synthetic suite in one batched pipeline run
    serve          run the analysis daemon (single-process or sharded)
    summary-server run the fleet-shared remote summary tier
    loadgen        drive a serve deployment with concurrent mixed traffic
    top            live dashboard over a fleet's /healthz + /metrics
    watch FILE     keep an analysis session alive, re-analyzing on change

A bare ``repro-icp FILE`` (no subcommand) is shorthand for
``repro-icp analyze FILE``.

Analysis flags (shared by analyze/graph/optimize/bench/watch through one
argparse parent) include ``--jobs N`` (wavefront-parallel analysis over N
workers; 0 means all cores) and ``--cache-stats`` (enable the
procedure-summary cache and print its hit/miss/invalidation counters).
Observability flags: ``--trace OUT.json`` exports a Chrome
``trace_event`` file (open in ``chrome://tracing`` or Perfetto),
``--metrics-json OUT.json`` snapshots the unified metrics registry, and
``--profile`` prints per-phase wall/CPU timings plus the hot-procedure
table.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
import time
from typing import List, Optional

from repro.api import ICPConfig, analyze
from repro.errors import ReproError
from repro.interp import run_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.obs import Observability


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _load(path: str):
    """Parse a source file; .f/.for/.f77 go through the FORTRAN front end."""
    text = _read(path)
    if path.lower().endswith((".f", ".for", ".f77")):
        from repro.lang.fortran import parse_fortran

        return parse_fortran(text)
    return parse_program(text)


def _job_count(value: str) -> int:
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = all cores), got {count}"
        )
    return count


def _config_from(args: argparse.Namespace, **extra) -> ICPConfig:
    # Funnel through the one validated construction path (from_dict), the
    # same one sessions and bench harnesses use.
    data = {
        "propagate_floats": not args.no_floats,
        "propagate_returns": args.returns or args.exit_values,
        "propagate_exit_values": args.exit_values,
        "engine": args.engine,
        "engine_backend": getattr(args, "engine_backend", "graph"),
        "context_mode": getattr(args, "context_mode", "carini-hind"),
        "context_max_per_proc": getattr(args, "context_max_per_proc", 64),
        "workers": args.jobs,
        "cache": args.cache_stats,
    }
    if getattr(args, "store_dir", None):
        data["store_dir"] = args.store_dir
        data["store_max_bytes"] = args.store_max_bytes
    if getattr(args, "store_remote_url", None):
        data["store_remote_url"] = args.store_remote_url
        data["store_remote_timeout_ms"] = args.store_remote_timeout_ms
    if getattr(args, "store_codec", None):
        data["store_codec"] = args.store_codec
    data.update(extra)
    return ICPConfig.from_dict(data)


def _obs_from(args: argparse.Namespace) -> Optional[Observability]:
    """Build the observability context the flags request (None when off)."""
    if not (args.trace or args.metrics_json or args.profile):
        return None
    return Observability.create(
        trace=bool(args.trace),
        metrics=bool(args.metrics_json),
        profile=args.profile,
    )


def _emit_observability(
    args: argparse.Namespace,
    obs: Observability,
    results,
    print_profile: bool = True,
) -> None:
    """Write --trace/--metrics-json artifacts; print the --profile report."""
    if args.profile and print_profile:
        print()
        print(obs.profiler.phase_report())
        print()
        print(obs.profiler.hot_report())
    if args.metrics_json:
        from repro.core.metrics import absorb_pipeline_metrics

        for result in results:
            absorb_pipeline_metrics(obs.metrics, result)
        obs.metrics.write(args.metrics_json)
        print(f"metrics snapshot written to {args.metrics_json}", file=sys.stderr)
    if args.trace:
        obs.tracer.write(args.trace)
        print(
            f"chrome trace written to {args.trace} "
            f"({len(obs.tracer.events())} events)",
            file=sys.stderr,
        )


def _cmd_analyze(args: argparse.Namespace) -> int:
    obs = _obs_from(args)
    result = analyze(_load(args.file), _config_from(args), obs=obs)
    if args.report:
        from repro.core.report import full_report

        print(full_report(result))
    else:
        print(result.summary())
    if args.cache_stats and not args.report:
        from repro.core.report import scheduling_report

        print()
        print(scheduling_report(result))
    if args.timings:
        print("\nphase timings (seconds):")
        for phase, seconds in result.timings.items():
            print(f"  {phase:<10} {seconds:.6f}")
    if obs is not None:
        # --report already embeds the observability section.
        _emit_observability(args, obs, [result], print_profile=not args.report)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.diag import DiagOptions, check_source, load_baseline
    from repro.diag.output import render_json, render_sarif, render_text
    from repro.diag.suppress import write_baseline

    config = _config_from(args)
    rules = None
    if args.rules:
        rules = frozenset(
            rule.strip().upper() for rule in args.rules.split(",") if rule.strip()
        )
    elif config.diag_rules is not None:
        rules = frozenset(config.diag_rules)
    options = DiagOptions(
        rules=rules,
        severity_floor=args.severity_floor or config.diag_severity_floor,
        sanitize=args.sanitize,
        max_steps=args.max_steps,
    )
    baseline = frozenset()
    if args.baseline and not args.write_baseline:
        baseline = load_baseline(args.baseline)

    obs = _obs_from(args)
    entries = []
    for path in args.files:
        diag = check_source(
            _read(path),
            path=path,
            config=config,
            options=options,
            obs=obs,
            baseline=baseline,
        )
        entries.append((path, diag))

    if args.write_baseline:
        if not args.baseline:
            print("error: --write-baseline requires --baseline PATH", file=sys.stderr)
            return 2
        count = write_baseline(
            args.baseline, (f for _, diag in entries for f in diag.findings)
        )
        print(
            f"baseline written to {args.baseline} ({count} finding(s))",
            file=sys.stderr,
        )
        return 0

    fmt = args.format or ("sarif" if config.diag_sarif else "text")
    renderer = {"text": render_text, "json": render_json, "sarif": render_sarif}[fmt]
    rendered = renderer(entries)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"{fmt} report written to {args.output}", file=sys.stderr)
    else:
        print(rendered, end="")
    if obs is not None:
        _emit_observability(args, obs, [])
    has_errors = any(diag.errors for _, diag in entries)
    return 1 if has_errors else 0


def _cmd_graph(args: argparse.Namespace) -> int:
    from repro.core.report import pcg_to_dot

    result = analyze(_load(args.file), _config_from(args))
    print(pcg_to_dot(result))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.core.optimize import optimize_program

    result = optimize_program(
        _load(args.file),
        _config_from(args),
        clone=args.clone,
        inline=args.inline,
        sweep=not args.no_sweep,
    )
    print(pretty_program(result.program), end="")
    print(f"# {result.summary()}", file=sys.stderr)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    program = _load(args.file)
    outcome = run_program(program, max_steps=args.max_steps)
    for value in outcome.outputs:
        print(value)
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.bench import tables

    wanted = set(args.numbers or [1, 2, 3, 4, 5])
    if 1 in wanted:
        print(tables.format_table1(tables.table1_rows(), "Table 1: call-site candidates"))
        print()
    if 2 in wanted:
        print(tables.format_table2(tables.table2_rows(), "Table 2: propagated constants"))
        print()
    if 3 in wanted:
        print(
            tables.format_table1(
                tables.table3_rows(), "Table 3: candidates (GT subset, no floats)"
            )
        )
        print()
    if 4 in wanted:
        print(
            tables.format_table2(
                tables.table4_rows(), "Table 4: propagated (GT subset, no floats)"
            )
        )
        print()
    if 5 in wanted:
        print(tables.format_table5(tables.table5_rows()))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.suite import SUITE, analyze_suite
    from repro.core.metrics import scheduling_metrics

    obs = _obs_from(args)
    names = args.names or sorted(SUITE)
    tmp_store = None
    service = None
    service_tmp = None
    extra = {}
    if args.warm and not getattr(args, "store_dir", None):
        # A warm rerun needs a persistent tier to rerun against.
        import tempfile

        tmp_store = tempfile.TemporaryDirectory(prefix="repro-icp-store-")
        extra["store_dir"] = tmp_store.name
    if args.warm and not getattr(args, "store_remote_url", None):
        # The remote-warm leg needs a summary server.  Boot an ephemeral
        # in-process one on an OS-assigned port; the cold pass write-through
        # populates it alongside the local tier.
        import tempfile

        from repro.store.service import SummaryService

        service_tmp = tempfile.TemporaryDirectory(
            prefix="repro-icp-summaries-"
        )
        service = SummaryService(
            ICPConfig.from_dict(
                {
                    "store_dir": service_tmp.name,
                    "serve_port": 0,
                    "serve_log_enabled": False,
                }
            ),
            compact_interval=None,
        )
        host, port = service.start()
        extra["store_remote_url"] = f"http://{host}:{port}"

    def _cleanup() -> None:
        if service is not None:
            service.close()
        if service_tmp is not None:
            service_tmp.cleanup()
        if tmp_store is not None:
            tmp_store.cleanup()

    config = _config_from(args, **extra)
    try:
        run = analyze_suite(
            names, config, scale=args.scale, obs=obs,
            diagnostics=args.check,
        )
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        _cleanup()
        return 1
    lint_header = f" {'lint':>5}" if args.check else ""
    print(
        f"{'benchmark':<16} {'procs':>5} {'edges':>5} {'fs-formals':>10} "
        f"{'run':>5} {'cached':>6} {'wall(s)':>9}" + lint_header
    )
    for name, result in run.results.items():
        row = scheduling_metrics(name, result.sched)
        lint_cell = f" {run.total_findings(name):>5}" if args.check else ""
        print(
            f"{name:<16} {len(result.pcg.nodes):>5} {len(result.pcg.edges):>5} "
            f"{len(result.fs.constant_formals()):>10} "
            f"{row.tasks_run:>5} {row.tasks_cached:>6} "
            f"{run.wall_seconds.get(name, 0.0):>9.4f}" + lint_cell
        )
    total_wall = sum(run.wall_seconds.values())
    lint_total = (
        f" {sum(run.total_findings(name) for name in run.results):>5}"
        if args.check
        else ""
    )
    print(
        f"{'total':<16} {'':>5} {'':>5} {'':>10} "
        f"{run.tasks_run:>5} {run.tasks_cached:>6} {total_wall:>9.4f}"
        + lint_total
    )
    if args.check and run.findings is not None:
        rule_totals: dict = {}
        for counts in run.findings.values():
            for rule_id, count in counts.items():
                rule_totals[rule_id] = rule_totals.get(rule_id, 0) + count
        if rule_totals:
            print(
                "findings by rule: "
                + ", ".join(
                    f"{rule_id}={count}"
                    for rule_id, count in sorted(rule_totals.items())
                )
            )
    if run.cache_stats is not None:
        cache = run.cache_stats
        print(
            f"summary cache: {cache.hits} hits, {cache.misses} misses, "
            f"{cache.invalidations} invalidations "
            f"(hit rate {cache.hit_rate:.0%}, {cache.entries} entries)"
        )
    warm = None
    remote_warm = None
    mismatched: List[str] = []
    remote_mismatched: List[str] = []
    if args.warm:
        import tempfile

        from repro.core.report import analysis_report

        cold_reports = {
            name: analysis_report(result)
            for name, result in run.results.items()
        }
        cold_wall = sum(run.wall_seconds.values())

        # Local-warm: a second, independent pipeline over the same store.
        # Every summary should come back from the local disk tier, and the
        # rendered analysis must not change by a byte.
        warm = analyze_suite(
            names, config, scale=args.scale, obs=None, diagnostics=args.check
        )
        mismatched = [
            name
            for name in run.results
            if cold_reports[name] != analysis_report(warm.results[name])
        ]
        warm_wall = sum(warm.wall_seconds.values())
        reduction = 1.0 - (warm_wall / cold_wall) if cold_wall else 0.0
        verdict = (
            "reports byte-identical"
            if not mismatched
            else f"REPORT MISMATCH in {mismatched}"
        )
        print(
            f"local-warm rerun: {warm_wall:.4f}s vs cold {cold_wall:.4f}s "
            f"({reduction:.0%} reduction; engine runs {run.tasks_run} -> "
            f"{warm.tasks_run}, cached {warm.tasks_cached}), {verdict}"
        )

        # Remote-warm: a fresh, empty local store in front of the same
        # summary server — every summary is fetched over HTTP and promoted
        # to the new disk tier; the reports still must not change.
        with tempfile.TemporaryDirectory(
            prefix="repro-icp-store-remote-warm-"
        ) as fresh_dir:
            remote_config = ICPConfig.from_dict(
                {**config.to_dict(), "store_dir": fresh_dir}
            )
            remote_warm = analyze_suite(
                names,
                remote_config,
                scale=args.scale,
                obs=None,
                diagnostics=args.check,
            )
            remote_mismatched = [
                name
                for name in run.results
                if cold_reports[name]
                != analysis_report(remote_warm.results[name])
            ]
        remote_wall = sum(remote_warm.wall_seconds.values())
        remote_reduction = (
            1.0 - (remote_wall / cold_wall) if cold_wall else 0.0
        )
        remote_verdict = (
            "reports byte-identical"
            if not remote_mismatched
            else f"REPORT MISMATCH in {remote_mismatched}"
        )
        print(
            f"remote-warm rerun: {remote_wall:.4f}s vs cold {cold_wall:.4f}s "
            f"({remote_reduction:.0%} reduction; engine runs "
            f"{run.tasks_run} -> {remote_warm.tasks_run}, "
            f"cached {remote_warm.tasks_cached}), {remote_verdict}"
        )
    phases_section = None
    if getattr(args, "phases", False):
        from repro.bench.suite import compare_engine_phases

        phases_section = compare_engine_phases(
            names, config=config, scale=args.scale,
            repeats=getattr(args, "phase_repeats", 5),
        )
        print(
            f"{'phase':<10} {'graph(s)':>9} {'flat(s)':>9} {'speedup':>8}"
        )
        for phase in ("ssa", "scc", "solve"):
            print(
                f"{phase:<10} {phases_section['graph'][phase]:>9.4f} "
                f"{phases_section['flat'][phase]:>9.4f} "
                f"{phases_section['speedup'][phase]:>7.2f}x"
            )
        print(
            f"{'ssa+scc':<10} "
            f"{phases_section['graph']['ssa'] + phases_section['graph']['scc']:>9.4f} "
            f"{phases_section['flat']['ssa'] + phases_section['flat']['scc']:>9.4f} "
            f"{phases_section['speedup']['combined_ssa_scc']:>7.2f}x"
        )
        phases_verdict = (
            "reports byte-identical"
            if phases_section["reports_identical"]
            else f"REPORT MISMATCH in {phases_section['mismatched']}"
        )
        print(
            f"phases: {phases_section['repeats']} warm repeats, "
            f"{phases_section['graph']['calls']:.0f} analyses/backend, "
            f"wall {phases_section['graph']['wall_seconds']:.4f}s -> "
            f"{phases_section['flat']['wall_seconds']:.4f}s "
            f"({phases_section['speedup']['wall']:.2f}x), {phases_verdict}"
        )
    contexts_section = None
    if getattr(args, "contexts", False):
        from repro.bench.suite import compare_context_modes

        comparison = compare_context_modes(config=config, scale=args.scale)
        contexts_section = {
            "schema": "repro-icp/bench-contexts/v1",
            "scale": args.scale,
            "profiles": comparison,
        }
        print(
            f"{'profile':<12} {'mode':<15} {'fallback':>8} {'formals':>7} "
            f"{'ctxs':>5} {'widen':>5} {'degraded':>8} {'wall(s)':>9}"
        )
        for name, modes in comparison.items():
            for mode, row in modes.items():
                stats = row.get("contexts") or {}
                print(
                    f"{name:<12} {mode:<15} {row['fallback_edges']:>8} "
                    f"{row['constant_formals']:>7} "
                    f"{stats.get('contexts', '-'):>5} "
                    f"{stats.get('widenings', '-'):>5} "
                    f"{len(stats.get('degraded_procs', [])) if stats else '-':>8} "
                    f"{row['wall_seconds']:>9.4f}"
                )
    if args.json:
        _write_bench_json(
            args.json,
            args,
            run,
            warm=warm,
            mismatched=mismatched,
            remote_warm=remote_warm,
            remote_mismatched=remote_mismatched,
            contexts=contexts_section,
            phases=phases_section,
        )
        print(f"bench results written to {args.json}", file=sys.stderr)
    if obs is not None:
        _emit_observability(args, obs, run.results.values())
    _cleanup()
    phases_mismatch = phases_section is not None and not phases_section[
        "reports_identical"
    ]
    return 1 if (mismatched or remote_mismatched or phases_mismatch) else 0


def _write_bench_json(
    path: str,
    args: argparse.Namespace,
    run,
    warm=None,
    mismatched=(),
    remote_warm=None,
    remote_mismatched=(),
    contexts=None,
    phases=None,
) -> None:
    """Machine-readable bench results (the per-PR perf trajectory record)."""
    import json

    from repro.core.metrics import scheduling_metrics

    programs = {}
    for name, result in run.results.items():
        row = scheduling_metrics(name, result.sched)
        programs[name] = {
            "wall_seconds": run.wall_seconds.get(name),
            "procedures": len(result.pcg.nodes),
            "call_edges": len(result.pcg.edges),
            "fs_constant_formals": len(result.fs.constant_formals()),
            "tasks_run": row.tasks_run,
            "tasks_cached": row.tasks_cached,
            "cache_hit_rate": row.cache_hit_rate,
            "engine_seconds": row.analysis_seconds,
        }
        if run.findings is not None:
            programs[name]["findings"] = run.findings.get(name, {})
    payload = {
        "schema": "repro-icp/bench/v1",
        "workers": args.jobs,
        "executor": "thread",
        "cache": bool(args.cache_stats),
        "scale": args.scale,
        "engine": args.engine,
        "engine_backend": getattr(args, "engine_backend", "graph"),
        "totals": {
            "wall_seconds": sum(run.wall_seconds.values()),
            "tasks_run": run.tasks_run,
            "tasks_cached": run.tasks_cached,
            "cache_hit_rate": (
                run.cache_stats.hit_rate if run.cache_stats is not None else 0.0
            ),
        },
        "programs": programs,
    }
    if warm is not None:
        cold_wall = sum(run.wall_seconds.values())
        warm_wall = sum(warm.wall_seconds.values())
        payload["warm"] = {
            "wall_seconds": warm_wall,
            "reduction": 1.0 - (warm_wall / cold_wall) if cold_wall else 0.0,
            "tasks_run": warm.tasks_run,
            "tasks_cached": warm.tasks_cached,
            "reports_identical": not mismatched,
        }
    if remote_warm is not None:
        cold_wall = sum(run.wall_seconds.values())
        remote_wall = sum(remote_warm.wall_seconds.values())
        payload["remote_warm"] = {
            "wall_seconds": remote_wall,
            "reduction": (
                1.0 - (remote_wall / cold_wall) if cold_wall else 0.0
            ),
            "tasks_run": remote_warm.tasks_run,
            "tasks_cached": remote_warm.tasks_cached,
            "reports_identical": not remote_mismatched,
        }
    if contexts is not None:
        payload["contexts"] = contexts
    if phases is not None:
        payload["phases"] = phases
    try:
        # The serving benchmark (repro-icp loadgen) owns the "serve"
        # section of the same file, --contexts owns "contexts", and
        # --phases owns "phases"; a bench rewrite must not clobber
        # sections it did not regenerate.
        with open(path, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
        if isinstance(existing, dict) and "serve" in existing:
            payload["serve"] = existing["serve"]
        if (
            contexts is None
            and isinstance(existing, dict)
            and "contexts" in existing
        ):
            payload["contexts"] = existing["contexts"]
        if (
            phases is None
            and isinstance(existing, dict)
            and "phases" in existing
        ):
            payload["phases"] = existing["phases"]
    except (OSError, ValueError):
        pass
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Load-generate against serve deployments and record the results."""
    from repro.bench.loadgen import (
        merge_bench_json,
        run_loadgen,
        run_shard_comparison,
    )

    overrides = {"serve_max_sessions": args.max_sessions}
    if args.clients is not None:
        overrides["loadgen_clients"] = args.clients
    if args.ops is not None:
        overrides["loadgen_ops"] = args.ops
    if args.programs is not None:
        overrides["loadgen_programs"] = args.programs
    if args.procs is not None:
        overrides["loadgen_procs"] = args.procs
    if args.seed is not None:
        overrides["loadgen_seed"] = args.seed
    try:
        config = _config_from(args, **overrides)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.url:
        result = run_loadgen(
            args.url,
            clients=config.loadgen_clients,
            ops=config.loadgen_ops,
            programs=config.loadgen_programs,
            seed=config.loadgen_seed,
            procs=config.loadgen_procs,
        )
        print(
            f"{args.url}: {result.ok}/{result.ops} ok, "
            f"{result.reloads} reloads, {result.rejected} rejected, "
            f"p50 {result.percentile(50) * 1000:.1f}ms, "
            f"p99 {result.percentile(99) * 1000:.1f}ms, "
            f"{result.throughput:.1f} ops/s over {result.wall_seconds:.1f}s"
        )
        section = {
            "schema": "repro-icp/loadgen/v1",
            "cpu_count": os.cpu_count(),
            "clients": config.loadgen_clients,
            "ops": config.loadgen_ops,
            "programs": config.loadgen_programs,
            "procs_per_program": config.loadgen_procs,
            "seed": config.loadgen_seed,
            "url": args.url,
            "runs": {"external": result.to_dict()},
        }
    else:
        try:
            counts = sorted(
                {int(part) for part in args.shards.split(",") if part.strip()}
            )
        except ValueError:
            print(f"error: --shards must be a comma list of ints, "
                  f"got {args.shards!r}", file=sys.stderr)
            return 1
        if not counts or any(count < 1 for count in counts):
            print("error: --shards needs counts >= 1", file=sys.stderr)
            return 1
        section = run_shard_comparison(config, counts)
    if args.json:
        merge_bench_json(args.json, section)
        print(f"serve bench merged into {args.json}", file=sys.stderr)
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    """Keep a session alive, re-analyzing the file whenever it changes."""
    from repro.api import AnalysisSession
    from repro.core.report import session_report

    obs = _obs_from(args)
    session = AnalysisSession(_load(args.file), _config_from(args), obs=obs)

    def analyze_once() -> None:
        result = session.analyze()
        print(result.summary())
        print(session_report(session))
        sys.stdout.flush()

    def file_stamp():
        # Float st_mtime loses sub-second precision, so an edit landing in
        # the same second as the last one compares equal and is missed;
        # stamp with (st_mtime_ns, st_size) instead, and let an unchanged
        # stamp fall back to a content hash below before declaring quiet.
        status = os.stat(args.file)
        return (status.st_mtime_ns, status.st_size)

    def content_hash():
        import hashlib

        with open(args.file, "rb") as handle:
            return hashlib.sha256(handle.read()).hexdigest()

    iterations = 0
    last_stamp = None
    last_hash = None
    try:
        analyze_once()
        last_stamp = file_stamp()
        last_hash = content_hash()
        while not args.max_iterations or iterations < args.max_iterations:
            time.sleep(args.interval)
            iterations += 1
            try:
                stamp = file_stamp()
                if stamp == last_stamp and content_hash() == last_hash:
                    continue
            except OSError as error:
                # Editors replace files non-atomically; retry next tick.
                print(f"watch: {error}", file=sys.stderr)
                continue
            last_stamp = stamp
            try:
                source = _load(args.file)
                last_hash = content_hash()
                changed = session.sync(source)
            except (ReproError, ValueError, OSError) as error:
                print(f"watch: {error}", file=sys.stderr)
                continue
            if not changed:
                print("watch: no procedure changed")
                continue
            print(f"watch: {changed} procedure(s) changed, re-analyzing")
            try:
                analyze_once()
            except (ReproError, ValueError) as error:
                print(f"watch: {error}", file=sys.stderr)
    except KeyboardInterrupt:
        pass
    # Only emit from a completed analysis: ^C before the first analyze()
    # finishes leaves session.result unset.
    if obs is not None and session.result is not None:
        _emit_observability(args, obs, [session.result])
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the analysis daemon (single-process or sharded) until interrupted."""
    import json as json_module

    from repro.serve import create_server

    try:
        config = _config_from(
            args,
            serve_host=args.host,
            serve_port=args.port,
            serve_workers=args.serve_workers,
            serve_max_queue=args.max_queue,
            serve_timeout_seconds=args.request_timeout,
            serve_max_sessions=args.max_sessions,
            serve_shards=args.shards,
            serve_rebalance=args.rebalance,
            # The serving obs knobs: the server self-constructs its
            # registry/tracer/logger from these (each shard its own).
            serve_metrics=not args.no_metrics,
            serve_trace=bool(args.trace),
            serve_log_enabled=not args.quiet,
            serve_log_slow_ms=args.slow_ms,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    server = create_server(config)
    host, port = server.start()
    store_note = f", store {config.store_dir}" if config.store_dir else ""
    if config.store_remote_url:
        store_note += f" + remote {config.store_remote_url}"
    shard_note = (
        f", {config.serve_shards} shard process(es)"
        if config.serve_shards
        else ""
    )
    print(
        f"repro-icp serve listening on http://{host}:{port} "
        f"({config.serve_workers} worker(s), queue {config.serve_max_queue}, "
        f"timeout {config.serve_timeout_seconds}s{shard_note}{store_note})",
        file=sys.stderr,
    )
    sys.stderr.flush()
    # A SIGTERM (systemd stop, process supervisor, `kill`) must run the
    # same orderly shutdown as ^C: without it the front dies mid-sleep
    # and leaves spawned shard workers orphaned.
    stop = threading.Event()
    try:
        previous_term = signal.signal(
            signal.SIGTERM, lambda signum, frame: stop.set()
        )
    except ValueError:  # not the main thread (embedded use)
        previous_term = None
    deadline = time.monotonic() + args.max_seconds
    try:
        while not stop.is_set() and (
            args.max_seconds <= 0 or time.monotonic() < deadline
        ):
            stop.wait(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        # Export the fleet artifacts BEFORE closing: the merged trace and
        # the metrics snapshot need the shard processes still answering.
        if args.trace:
            try:
                trace = server.export_trace()
                with open(args.trace, "w", encoding="utf-8") as handle:
                    json_module.dump(trace, handle, indent=1)
                    handle.write("\n")
                print(
                    f"fleet trace written to {args.trace} "
                    f"({len(trace['traceEvents'])} events)",
                    file=sys.stderr,
                )
            except OSError as error:
                print(f"error writing trace: {error}", file=sys.stderr)
        if args.metrics_json and server.obs.metrics.enabled:
            try:
                server.obs.metrics.write(args.metrics_json)
                print(
                    f"metrics snapshot written to {args.metrics_json}",
                    file=sys.stderr,
                )
            except OSError as error:
                print(f"error writing metrics: {error}", file=sys.stderr)
        server.close()
        if previous_term is not None:
            signal.signal(signal.SIGTERM, previous_term)
    return 0


def _cmd_summary_server(args: argparse.Namespace) -> int:
    """Run the fleet-shared summary service until interrupted."""
    from repro.store.service import SummaryService

    try:
        config = ICPConfig.from_dict(
            {
                "store_dir": args.store_dir,
                "store_max_bytes": args.store_max_bytes,
                "serve_host": args.host,
                "serve_port": args.port,
                "serve_metrics": not args.no_metrics,
                "serve_log_enabled": not args.quiet,
                "serve_log_slow_ms": args.slow_ms,
            }
        )
        compact = (
            None if args.compact_interval <= 0 else args.compact_interval
        )
        server = SummaryService(config, compact_interval=compact)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    host, port = server.start()
    stats = server.blobs.stats
    print(
        f"repro-icp summary-server listening on http://{host}:{port} "
        f"(store {config.store_dir}: {stats.entries} entries, "
        f"{stats.bytes} bytes, budget {config.store_max_bytes})",
        file=sys.stderr,
    )
    sys.stderr.flush()
    stop = threading.Event()
    try:
        previous_term = signal.signal(
            signal.SIGTERM, lambda signum, frame: stop.set()
        )
    except ValueError:  # not the main thread (embedded use)
        previous_term = None
    deadline = time.monotonic() + args.max_seconds
    try:
        while not stop.is_set() and (
            args.max_seconds <= 0 or time.monotonic() < deadline
        ):
            stop.wait(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        if previous_term is not None:
            signal.signal(signal.SIGTERM, previous_term)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live fleet dashboard over /healthz + /metrics."""
    from repro.obs.top import run_top

    if args.interval <= 0:
        print("error: --interval must be positive", file=sys.stderr)
        return 1
    return run_top(
        args.url,
        interval=args.interval,
        frames=args.frames,
        clear=not args.no_clear,
    )


def _analysis_parent() -> argparse.ArgumentParser:
    """The analysis flags every analyzing subcommand shares."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--no-floats", action="store_true",
                        help="disable floating-point constant propagation")
    parent.add_argument("--returns", action="store_true",
                        help="enable the return-constant extension")
    parent.add_argument("--exit-values", action="store_true",
                        help="also propagate constant exit values of modified "
                             "formals and globals (implies --returns)")
    parent.add_argument("--engine", choices=("scc", "simple"), default="scc",
                        help="intraprocedural engine (default: scc)")
    parent.add_argument("--engine-backend", choices=("graph", "flat"),
                        default="graph", dest="engine_backend",
                        help="SCC solve core: 'graph' (object-graph oracle) "
                             "or 'flat' (slot-indexed arrays; byte-identical "
                             "results, faster warm solves)")
    parent.add_argument("--context-mode",
                        choices=("carini-hind", "value-contexts"),
                        default="carini-hind", dest="context_mode",
                        help="interprocedural strategy: the paper's one-pass "
                             "traversal (default) or value-context "
                             "tabulation, which resolves recursion with "
                             "per-entry-environment summaries instead of "
                             "the FI fallback")
    parent.add_argument("--context-max-per-proc", type=int, default=64,
                        metavar="N", dest="context_max_per_proc",
                        help="value-contexts blowup guard: beyond N tabulated "
                             "entry environments a procedure degrades to one "
                             "widened FI-seeded context (default: 64)")
    parent.add_argument("--jobs", type=_job_count, default=1, metavar="N",
                        help="worker pool size for wavefront-parallel "
                             "analysis (default: 1 = serial; 0 = all cores)")
    parent.add_argument("--cache-stats", action="store_true",
                        help="enable the procedure-summary cache and report "
                             "its hit/miss/invalidation counters")
    parent.add_argument("--store-dir", metavar="DIR", default=None,
                        help="back the summary cache with a persistent "
                             "on-disk store under DIR (implies caching); "
                             "summaries survive across runs")
    parent.add_argument("--store-max-bytes", type=int,
                        default=64 * 1024 * 1024, metavar="N",
                        help="size budget of the persistent store; LRU "
                             "entries are evicted beyond it (default: 64MiB)")
    parent.add_argument("--store-remote-url", metavar="URL", default=None,
                        dest="store_remote_url",
                        help="fleet-shared summary tier: a repro-icp "
                             "summary-server base URL behind the local "
                             "--store-dir tier (misses fetch from it, "
                             "writes replicate to it, outages fail open)")
    parent.add_argument("--store-remote-timeout-ms", type=int, default=250,
                        metavar="MS", dest="store_remote_timeout_ms",
                        help="per-request budget for the remote summary "
                             "tier; past it the request reads as a miss "
                             "(default: 250)")
    parent.add_argument("--store-codec", choices=("json", "binary"),
                        default=None, dest="store_codec",
                        help="entry encoding for new store writes; either "
                             "codec reads both (default: json)")
    return parent


def _obs_parent() -> argparse.ArgumentParser:
    """The observability flags (--trace/--metrics-json/--profile)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--trace", metavar="OUT.json",
                        help="export a Chrome trace_event file of the run "
                             "(open in chrome://tracing or Perfetto)")
    parent.add_argument("--metrics-json", metavar="OUT.json", dest="metrics_json",
                        help="write a JSON snapshot of the unified metrics "
                             "registry (scheduler, cache, SCC counters)")
    parent.add_argument("--profile", action="store_true",
                        help="collect per-phase wall/CPU timings and print "
                             "the hot-procedure report")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-icp",
        description=(
            "Flow-sensitive interprocedural constant propagation "
            "(Carini & Hind, PLDI 1995)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    common = _analysis_parent()
    obs_flags = _obs_parent()

    analyze_p = sub.add_parser("analyze", parents=[common, obs_flags],
                               help="report interprocedural constants")
    analyze_p.add_argument("file")
    analyze_p.add_argument("--timings", action="store_true")
    analyze_p.add_argument("--report", action="store_true",
                           help="detailed per-procedure report")
    analyze_p.set_defaults(func=_cmd_analyze)

    check = sub.add_parser(
        "check", parents=[common, obs_flags],
        help="run the interprocedural lint checks (diagnostics engine)",
    )
    check.add_argument("files", nargs="+", metavar="FILE")
    check.add_argument("--format", choices=("text", "json", "sarif"),
                       default=None,
                       help="report format (default: text, or sarif when "
                            "the config sets diag_sarif)")
    check.add_argument("--output", metavar="OUT",
                       help="write the report to OUT instead of stdout")
    check.add_argument("--rules", metavar="IDS",
                       help="comma-separated rule IDs to enable "
                            "(default: all rules)")
    check.add_argument("--severity-floor", choices=("note", "warning", "error"),
                       default=None, dest="severity_floor",
                       help="weakest severity to report (default: note)")
    check.add_argument("--sanitize", action="store_true",
                       help="also execute each program and cross-check "
                            "constant claims (ICP900)")
    check.add_argument("--max-steps", type=int, default=1_000_000,
                       help="interpreter step budget for --sanitize")
    check.add_argument("--baseline", metavar="PATH",
                       help="baseline file of accepted findings "
                            "(.icplint-baseline.json)")
    check.add_argument("--write-baseline", action="store_true",
                       help="write the surviving findings to --baseline "
                            "and exit 0")
    check.set_defaults(func=_cmd_check)

    graph = sub.add_parser("graph", parents=[common],
                           help="print the PCG as Graphviz DOT")
    graph.add_argument("file")
    graph.set_defaults(func=_cmd_graph)

    optimize = sub.add_parser("optimize", parents=[common],
                              help="print the transformed program")
    optimize.add_argument("file")
    optimize.add_argument("--clone", action="store_true",
                          help="clone procedures whose sites disagree on constants")
    optimize.add_argument("--inline", action="store_true",
                          help="inline small leaf procedures first")
    optimize.add_argument("--no-sweep", action="store_true",
                          help="keep dead assignments after substitution")
    optimize.set_defaults(func=_cmd_optimize)

    run = sub.add_parser("run", help="execute with the reference interpreter")
    run.add_argument("file")
    run.add_argument("--max-steps", type=int, default=1_000_000)
    run.set_defaults(func=_cmd_run)

    tables = sub.add_parser("tables", help="regenerate the paper's tables")
    tables.add_argument("numbers", nargs="*", type=int, choices=range(1, 6),
                        metavar="N", help="table numbers (default: all)")
    tables.set_defaults(func=_cmd_tables)

    bench = sub.add_parser(
        "bench", parents=[common, obs_flags],
        help="analyze the synthetic suite in one batched run",
    )
    bench.add_argument("names", nargs="*", metavar="NAME",
                       help="benchmark names (default: the whole suite)")
    bench.add_argument("--scale", type=int, default=1,
                       help="pattern-count multiplier (default: 1)")
    bench.add_argument("--json", metavar="OUT.json",
                       help="write machine-readable bench results "
                            "(e.g. BENCH_icp.json) for cross-PR tracking")
    bench.add_argument("--check", action="store_true",
                       help="run the diagnostics engine over each benchmark "
                            "and add a finding-count column")
    bench.add_argument("--warm", action="store_true",
                       help="after the cold run, rerun the suite local-warm "
                            "(same store) and remote-warm (fresh store in "
                            "front of a summary server, ephemeral unless "
                            "--store-remote-url) and verify all three "
                            "reports are byte-identical")
    bench.add_argument("--contexts", action="store_true",
                       help="run the recursion-heavy profiles under both "
                            "context modes and report the precision/cost "
                            "comparison (added to --json as 'contexts')")
    bench.add_argument("--phases", action="store_true",
                       help="time the engine's ssa/scc/solve phases under "
                            "both engine backends (graph vs flat), gated on "
                            "byte-identical reports (added to --json as "
                            "'phases')")
    bench.add_argument("--phase-repeats", type=int, default=5,
                       dest="phase_repeats", metavar="N",
                       help="warm repeats per backend for --phases; repeats "
                            "on one pipeline model the sessions/serve "
                            "workload the skeleton cache amortizes "
                            "(default: 5)")
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve", parents=[common, obs_flags],
        help="run the analysis daemon (JSON over HTTP)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8100,
                       help="bind port; 0 picks a free one (default: 8100)")
    serve.add_argument("--serve-workers", type=int, default=2, metavar="N",
                       dest="serve_workers",
                       help="analysis worker threads (default: 2)")
    serve.add_argument("--max-queue", type=int, default=8, metavar="N",
                       dest="max_queue",
                       help="admitted-but-unfinished request bound; beyond "
                            "it requests get 503 + Retry-After (default: 8)")
    serve.add_argument("--request-timeout", type=float, default=10.0,
                       metavar="SECONDS", dest="request_timeout",
                       help="per-request deadline; analyze requests beyond "
                            "it degrade to the FI solution (default: 10)")
    serve.add_argument("--max-sessions", type=int, default=32, metavar="N",
                       dest="max_sessions",
                       help="resident program sessions before LRU eviction "
                            "(default: 32)")
    serve.add_argument("--max-seconds", type=float, default=0, metavar="S",
                       dest="max_seconds",
                       help="exit after S seconds (default: 0 = until ^C); "
                            "for smoke tests and CI")
    serve.add_argument("--shards", type=int, default=0, metavar="N",
                       help="shard the daemon across N worker processes "
                            "behind a consistent-hash router; shards share "
                            "the --store-dir store (default: 0 = single "
                            "process)")
    serve.add_argument("--rebalance", type=float, default=0.5,
                       metavar="SECONDS",
                       help="router health-sweep interval; a dead shard is "
                            "respawned within roughly this many seconds "
                            "(default: 0.5)")
    serve.add_argument("--quiet", action="store_true",
                       help="silence the structured JSON access log "
                            "(the /debug/last ring keeps filling)")
    serve.add_argument("--no-metrics", action="store_true", dest="no_metrics",
                       help="disable the metrics registry and GET /metrics")
    serve.add_argument("--slow-ms", type=float, default=500.0, metavar="MS",
                       dest="slow_ms",
                       help="access-log lines for requests slower than MS "
                            "are logged at warning level (default: 500)")
    serve.set_defaults(func=_cmd_serve)

    summary = sub.add_parser(
        "summary-server",
        help="run the fleet-shared summary service (content-addressed "
             "GET/PUT/HEAD over /v1/summaries/<key>)",
    )
    summary.add_argument("--store-dir", metavar="DIR", required=True,
                         help="directory holding the served summary blobs")
    summary.add_argument("--store-max-bytes", type=int,
                         default=64 * 1024 * 1024, metavar="N",
                         help="size budget; LRU entries are evicted beyond "
                              "it (default: 64MiB)")
    summary.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    summary.add_argument("--port", type=int, default=8200,
                         help="bind port; 0 picks a free one "
                              "(default: 8200)")
    summary.add_argument("--compact-interval", type=float, default=30.0,
                         metavar="SECONDS", dest="compact_interval",
                         help="background compaction period folding sibling "
                              "writers into the budget; <= 0 disables "
                              "(default: 30)")
    summary.add_argument("--max-seconds", type=float, default=0, metavar="S",
                         dest="max_seconds",
                         help="exit after S seconds (default: 0 = until "
                              "^C); for smoke tests and CI")
    summary.add_argument("--quiet", action="store_true",
                         help="silence the structured JSON access log")
    summary.add_argument("--no-metrics", action="store_true",
                         dest="no_metrics",
                         help="disable the metrics registry and "
                              "GET /v1/metrics")
    summary.add_argument("--slow-ms", type=float, default=500.0, metavar="MS",
                         dest="slow_ms",
                         help="access-log lines for requests slower than MS "
                              "are logged at warning level (default: 500)")
    summary.set_defaults(func=_cmd_summary_server)

    top = sub.add_parser(
        "top",
        help="live dashboard over a serve fleet's /healthz + /metrics",
    )
    top.add_argument("--url", default="http://127.0.0.1:8100",
                     help="serve front to poll "
                          "(default: http://127.0.0.1:8100)")
    top.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                     help="poll interval (default: 2)")
    top.add_argument("--frames", type=int, default=0, metavar="N",
                     help="render N frames then exit (default: 0 = forever); "
                          "for smoke tests and CI")
    top.add_argument("--no-clear", action="store_true", dest="no_clear",
                     help="append frames instead of clearing the screen "
                          "(useful when piping)")
    top.set_defaults(func=_cmd_top)

    loadgen = sub.add_parser(
        "loadgen", parents=[common, obs_flags],
        help="drive a serve deployment with concurrent mixed traffic and "
             "record p50/p99 latency + saturation throughput",
    )
    loadgen.add_argument("--clients", type=int, default=None, metavar="N",
                         help="concurrent client threads (default: 8)")
    loadgen.add_argument("--ops", type=int, default=None, metavar="N",
                         help="total operations across clients "
                              "(default: 400)")
    loadgen.add_argument("--programs", type=int, default=None, metavar="N",
                         help="distinct programs in the working set "
                              "(default: 20)")
    loadgen.add_argument("--procs", type=int, default=None, metavar="N",
                         help="procedures per generated program "
                              "(default: 20)")
    loadgen.add_argument("--seed", type=int, default=None, metavar="N",
                         help="corpus/traffic RNG seed (default: 0)")
    loadgen.add_argument("--shards", default="1,4", metavar="LIST",
                         help="comma list of shard counts to boot and "
                              "compare; 1 = single-process daemon "
                              "(default: 1,4)")
    loadgen.add_argument("--max-sessions", type=int, default=7, metavar="N",
                         dest="max_sessions",
                         help="resident sessions per serving process; the "
                              "workload's capacity-pressure knob "
                              "(default: 7)")
    loadgen.add_argument("--url", metavar="URL",
                         help="drive an already-running daemon at URL "
                              "instead of booting deployments")
    loadgen.add_argument("--json", metavar="OUT.json",
                         help="merge the results into OUT.json's \"serve\" "
                              "section (e.g. BENCH_icp.json)")
    loadgen.set_defaults(func=_cmd_loadgen)

    watch = sub.add_parser(
        "watch", parents=[common, obs_flags],
        help="watch a file, re-analyzing incrementally on change",
    )
    watch.add_argument("file")
    watch.add_argument("--interval", type=float, default=0.5, metavar="SECONDS",
                       help="polling interval (default: 0.5)")
    watch.add_argument("--max-iterations", type=int, default=0, metavar="N",
                       help="stop after N polls (default: 0 = run until ^C)")
    watch.set_defaults(func=_cmd_watch)
    return parser


#: Subcommand names; a leading argument that is none of these (and not a
#: flag) is treated as a file to analyze.
_SUBCOMMANDS = (
    "analyze", "check", "graph", "optimize", "run", "tables", "bench",
    "serve", "summary-server", "watch", "loadgen", "top",
)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] not in _SUBCOMMANDS and not argv[0].startswith("-"):
        argv.insert(0, "analyze")
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
