"""Deterministic single-procedure mutations for incremental workloads.

Feeds the differential test suite and ``repro.session.workload``: each
mutation clones one procedure, perturbs one or more numeric literals (and
optionally flips an additive operator), and renders the result back to
MiniF source — exactly the shape of edit :meth:`AnalysisSession.update`
accepts.  Mutations are analysis-safe by construction: they never touch
divisors or introduce zeros, so constant folding stays total and the edited
program remains valid without re-checking.
"""

from __future__ import annotations

import random
from typing import List

from repro.lang import ast
from repro.lang.clone import clone_procedure
from repro.lang.pretty import pretty_stmt


def render_procedure(proc: ast.Procedure) -> str:
    """Procedure source text as :meth:`AnalysisSession.update` expects it."""
    header = f"proc {proc.name}({', '.join(proc.formals)})"
    return header + "\n" + pretty_stmt(proc.body)


def _literal_sites(stmt: ast.Stmt) -> List[ast.Expr]:
    """Every literal in ``stmt`` that can be perturbed safely.

    Divisor/modulus operands are excluded so a perturbation can never turn a
    folding division into one by zero elsewhere (we also never *produce*
    zero, but skipping divisors keeps the rule local and obvious).
    """
    sites: List[ast.Expr] = []

    def visit_expr(expr: ast.Expr) -> None:
        if isinstance(expr, (ast.IntLit, ast.FloatLit)):
            sites.append(expr)
        elif isinstance(expr, ast.Unary):
            visit_expr(expr.operand)
        elif isinstance(expr, ast.Binary):
            visit_expr(expr.left)
            if expr.op not in ("/", "%"):
                visit_expr(expr.right)
        elif isinstance(expr, ast.Index):
            visit_expr(expr.index)

    def visit_stmt(node: ast.Stmt) -> None:
        if isinstance(node, ast.Block):
            for child in node.stmts:
                visit_stmt(child)
        elif isinstance(node, ast.Assign):
            visit_expr(node.expr)
        elif isinstance(node, ast.AssignIndex):
            visit_expr(node.index)
            visit_expr(node.expr)
        elif isinstance(node, (ast.CallStmt, ast.CallAssign)):
            for arg in node.args:
                visit_expr(arg)
        elif isinstance(node, ast.If):
            visit_expr(node.cond)
            visit_stmt(node.then_block)
            if node.else_block is not None:
                visit_stmt(node.else_block)
        elif isinstance(node, ast.While):
            visit_expr(node.cond)
            visit_stmt(node.body)
        elif isinstance(node, (ast.Return, ast.Print)):
            if getattr(node, "expr", None) is not None:
                visit_expr(node.expr)

    visit_stmt(stmt)
    return sites


def mutate_procedure(proc: ast.Procedure, seed: int) -> ast.Procedure:
    """A perturbed deep copy of ``proc`` (the original is untouched).

    Deterministic in ``(proc, seed)``.  Bumps 1–3 literals; literal-free
    procedures get returned as an unmodified clone (callers treat the
    resulting no-op update as such).
    """
    rng = random.Random(seed)
    clone = clone_procedure(proc)
    sites = _literal_sites(clone.body)
    if not sites:
        return clone
    for site in rng.sample(sites, k=min(len(sites), rng.randint(1, 3))):
        if isinstance(site, ast.IntLit):
            bumped = site.value + rng.choice((1, 2, 3))
            site.value = bumped if bumped != 0 else 1
        else:
            bumped = site.value + rng.choice((0.5, 1.5, 2.5))
            site.value = bumped if bumped != 0.0 else 0.5
    return clone


def mutated_source(proc: ast.Procedure, seed: int) -> str:
    """Source text of a mutated copy of ``proc``."""
    return render_procedure(mutate_procedure(proc, seed))
