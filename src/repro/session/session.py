"""Long-lived incremental analysis sessions.

An :class:`AnalysisSession` parses a program once, holds every pipeline
artifact (PCG, alias/MOD-REF/USE summaries, FI/FS solutions) plus the
content-addressed summary cache, and accepts per-procedure edits.  After an
edit, :meth:`AnalysisSession.analyze` re-runs only the PCG region whose
analysis inputs actually changed:

1. The cheap whole-program passes (validation, symbols, PCG, aliasing,
   MOD/REF, flow-insensitive ICP) recompute unconditionally — none of them
   runs the intraprocedural engine, and their fresh solutions feed the
   dirty-region diff.
2. :func:`repro.session.dirty.compute_dirty_region` derives the set of
   procedures whose flow-sensitive analysis could differ; everything else
   copies its previous result verbatim (no fingerprinting, no engine).
3. The wavefront scheduler runs over the dirty region only, with the
   session's summary cache behind it, so even dirty procedures whose inputs
   round-tripped (an edit that was reverted) come back as cache hits.

The produced :class:`~repro.core.driver.PipelineResult` renders
byte-identically (``repro.core.report.analysis_report``) to a cold
:func:`repro.api.analyze` run over the same program.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Set, Union

from repro.callgraph.pcg import build_pcg
from repro.core.config import ICPConfig
from repro.core.driver import CompilationPipeline, PipelineResult
from repro.core.flow_insensitive import flow_insensitive_icp
from repro.core.flow_sensitive import (
    FSResult,
    FSReuse,
    flow_sensitive_icp,
    make_engine,
)
from repro.core.returns import ReturnsResult, compute_returns
from repro.lang import ast
from repro.lang.parser import parse_program
from repro.lang.symbols import collect_symbols
from repro.lang.validate import validate_program
from repro.obs import NULL_OBS, Observability
from repro.sched.cache import SummaryCache, procedure_fingerprint
from repro.sched.scheduler import Scheduler
from repro.session.dirty import DirtyRegion, compute_dirty_region
from repro.summary.alias import compute_aliases
from repro.summary.modref import compute_modref
from repro.summary.use import UseReuse, compute_use


@dataclass
class SessionStats:
    """Counters of one session's edit/re-analysis history."""

    #: Procedure edits accepted (update/add/remove/sync-diff) so far.
    edits: int = 0
    #: Completed :meth:`AnalysisSession.analyze` calls.
    analyses: int = 0
    #: Procedures in the last analysis' PCG.
    last_procs: int = 0
    #: Size of the last analysis' flow-sensitive dirty region.
    last_dirty: int = 0
    #: Procedures whose previous FS result was copied (clean region).
    last_reused: int = 0
    #: Dirty procedures served from the summary cache without an engine run.
    last_cached: int = 0
    #: Intraprocedural engine executions in the last analysis.
    last_engine_runs: int = 0
    #: Engine executions across the session's lifetime.
    total_engine_runs: int = 0
    #: Clean-region copies across the session's lifetime.
    total_reused: int = 0

    @property
    def reuse_rate(self) -> float:
        """Share of the last analysis served without an engine run."""
        total = self.last_engine_runs + self.last_cached + self.last_reused
        if not total:
            return 0.0
        return (self.last_cached + self.last_reused) / total


def _parse_procedure(source: str, expect: Optional[str] = None) -> ast.Procedure:
    """Parse a single-procedure MiniF fragment."""
    program = parse_program(source)
    if program.global_names or program.inits:
        raise ValueError(
            "procedure fragment must not declare globals or init blocks"
        )
    if len(program.procedures) != 1:
        raise ValueError(
            f"expected exactly one procedure, got {len(program.procedures)}"
        )
    proc = program.procedures[0]
    if expect is not None and proc.name != expect:
        raise ValueError(
            f"fragment defines {proc.name!r}, expected {expect!r}"
        )
    return proc


class AnalysisSession:
    """One program, analyzed incrementally across edits.

    The session forces ``config.cache`` on (the summary cache is the second
    reuse tier behind the dirty-region fast path); all other knobs are
    honored as given.  ``config`` may be an :class:`ICPConfig` or a plain
    mapping routed through :meth:`ICPConfig.from_dict`.
    """

    def __init__(
        self,
        source: Union[str, ast.Program],
        config: Union[ICPConfig, Mapping[str, Any], None] = None,
        obs: Optional[Observability] = None,
        cache: Optional[SummaryCache] = None,
    ):
        from repro.store import cache_from_config

        if isinstance(config, Mapping):
            config = ICPConfig.from_dict(config)
        config = config or ICPConfig()
        if not config.cache:
            config = replace(config, cache=True)
        self.config = config
        self.obs = obs or NULL_OBS
        # An injected cache (the serve daemon hands every session one view
        # of its shared store) wins; otherwise the config decides between
        # the persistent two-tier cache and the process-local one.  An
        # empty SummaryCache is falsy (len == 0), so test against None.
        if cache is None:
            cache = cache_from_config(self.config, obs=self.obs)
        self.cache = cache
        self.program = (
            parse_program(source) if isinstance(source, str) else source
        )
        self.stats = SessionStats()
        #: The last completed analysis (None before the first analyze()).
        self.result: Optional[PipelineResult] = None
        #: The dirty region of the last incremental analysis (None for cold).
        self.last_region: Optional[DirtyRegion] = None
        self._edited: Set[str] = set()
        self._full_dirty = True
        self._prev_inputs = None  # (pcg, aliases, modref, fi) of last analyze
        #: Diagnostics cache: (result the findings were computed against,
        #: per-procedure finding lists).  Invalidated per procedure by
        #: comparing pipeline artifacts, not by re-running checks.
        self._diag_cache = None

    # ------------------------------------------------------------------
    # Edits.
    # ------------------------------------------------------------------

    def _proc_index(self, name: str) -> int:
        for index, proc in enumerate(self.program.procedures):
            if proc.name == name:
                return index
        known = ", ".join(sorted(p.name for p in self.program.procedures))
        raise KeyError(f"unknown procedure {name!r}; known procedures: {known}")

    def update(
        self, name: str, new_source: Union[str, ast.Procedure]
    ) -> bool:
        """Replace one procedure's definition.

        Returns False (and changes nothing) when the new definition is
        canonically identical to the current one — a no-op edit keeps the
        whole program clean.
        """
        proc = (
            _parse_procedure(new_source, expect=name)
            if isinstance(new_source, str)
            else new_source
        )
        if proc.name != name:
            raise ValueError(f"procedure {proc.name!r} does not match {name!r}")
        index = self._proc_index(name)
        if procedure_fingerprint(proc) == procedure_fingerprint(
            self.program.procedures[index]
        ):
            return False
        self.program.procedures[index] = proc
        self._edited.add(name)
        self.stats.edits += 1
        return True

    def add(self, source: Union[str, ast.Procedure]) -> str:
        """Add a new procedure; returns its name."""
        proc = _parse_procedure(source) if isinstance(source, str) else source
        if any(p.name == proc.name for p in self.program.procedures):
            raise ValueError(f"procedure {proc.name!r} already exists")
        self.program.procedures.append(proc)
        self._edited.add(proc.name)
        self.stats.edits += 1
        return proc.name

    def remove(self, name: str) -> None:
        """Remove a procedure (its cache slots are evicted immediately)."""
        index = self._proc_index(name)
        del self.program.procedures[index]
        self.cache.evict_procs([name])
        self._edited.add(name)
        self.stats.edits += 1

    def sync(self, source: Union[str, ast.Program]) -> int:
        """Adopt a new whole-program text, diffing procedure by procedure.

        The workhorse of ``repro-icp watch``: unchanged procedures (by
        canonical fingerprint) stay clean; changed/added/removed ones are
        marked edited.  A change to globals or init blocks invalidates
        everything.  Returns the number of procedures marked edited.
        """
        new_program = (
            parse_program(source) if isinstance(source, str) else source
        )
        old_inits = [(e.name, e.value) for e in self.program.inits]
        new_inits = [(e.name, e.value) for e in new_program.inits]
        if (
            list(self.program.global_names) != list(new_program.global_names)
            or old_inits != new_inits
        ):
            self.program = new_program
            self._full_dirty = True
            self._edited.clear()
            self.stats.edits += 1
            return len(new_program.procedures)

        old_procs = {p.name: p for p in self.program.procedures}
        new_procs = {p.name: p for p in new_program.procedures}
        changed: Set[str] = set()
        for name, proc in new_procs.items():
            old = old_procs.get(name)
            if old is None or procedure_fingerprint(old) != procedure_fingerprint(proc):
                changed.add(name)
        removed = set(old_procs) - set(new_procs)
        if removed:
            self.cache.evict_procs(removed)
        changed |= removed
        self.program = new_program
        if changed:
            self._edited |= changed
            self.stats.edits += len(changed)
        return len(changed)

    # ------------------------------------------------------------------
    # Analysis.
    # ------------------------------------------------------------------

    def analyze(self, run_transform: bool = False) -> PipelineResult:
        """Re-analyze, re-running the engine over the dirty region only."""
        config = self.config
        obs = self.obs
        program = self.program
        timings: Dict[str, float] = {}

        if obs.enabled:
            def timed(name, thunk):
                started = time.perf_counter()
                with obs.tracer.span(name, cat="phase"), obs.profiler.phase(name):
                    value = thunk()
                timings[name] = time.perf_counter() - started
                return value
        else:
            def timed(name, thunk):
                started = time.perf_counter()
                value = thunk()
                timings[name] = time.perf_counter() - started
                return value

        timed(
            "validate",
            lambda: validate_program(
                program,
                require_main=(config.entry == "main"),
                allow_missing=config.allow_missing,
            ),
        )
        symbols = timed("collect", lambda: collect_symbols(program))
        pcg = timed("pcg", lambda: build_pcg(program, symbols, config.entry))
        if pcg.missing_callees and not config.allow_missing:
            raise ValueError(
                f"calls to missing procedures: {sorted(pcg.missing_callees)}"
            )
        aliases = timed("alias", lambda: compute_aliases(program, symbols, pcg))
        modref = timed(
            "modref", lambda: compute_modref(program, symbols, pcg, aliases)
        )
        fi = timed(
            "icp_fi",
            lambda: flow_insensitive_icp(program, symbols, pcg, modref, config),
        )

        region: Optional[DirtyRegion] = None
        fs_reuse: Optional[FSReuse] = None
        use_reuse: Optional[UseReuse] = None
        previous = self.result
        if previous is not None and not self._full_dirty:
            prev_pcg, prev_aliases, prev_modref, prev_fi = self._prev_inputs
            region = timed(
                "dirty",
                lambda: compute_dirty_region(
                    self._edited, prev_pcg, pcg, prev_aliases, aliases,
                    prev_modref, modref, prev_fi, fi,
                ),
            )
            if config.context_mode != "value-contexts":
                clean = set(pcg.nodes) - set(region.fs_dirty)
                clean &= set(previous.fs.intra)
                clean = {
                    proc
                    for proc in clean
                    if _tables_complete(
                        proc, previous.fs, symbols, pcg, modref, program
                    )
                }
                fs_reuse = FSReuse(previous=previous.fs, clean=frozenset(clean))
            # Under value contexts the clean-copy fast path does not apply:
            # a procedure's merged result is a meet over its context table,
            # and entry environments are per-context.  Incremental reuse
            # happens one tier down instead — every (context, procedure)
            # analysis is served by the content-addressed summary cache
            # (keyed on context entry-env fingerprints), and evictions by
            # procedure name drop all of a procedure's context slots.
            use_reuse = UseReuse(
                previous=previous.use, seeds=region.use_seeds
            )

        scheduler = Scheduler.from_config(config, cache=self.cache, obs=obs)
        engine = make_engine(config)
        try:
            fs = timed(
                "icp_fs",
                lambda: flow_sensitive_icp(
                    program, symbols, pcg, modref, aliases, fi, config,
                    engine, scheduler=scheduler, reuse=fs_reuse,
                ),
            )
            use = timed(
                "use",
                lambda: compute_use(
                    program, symbols, pcg, modref, scheduler=scheduler,
                    reuse=use_reuse,
                ),
            )
            returns: Optional[ReturnsResult] = None
            if config.propagate_returns or config.propagate_exit_values:
                returns = timed(
                    "returns",
                    lambda: compute_returns(
                        program, symbols, pcg, modref, fs, fi, aliases,
                        config, engine,
                        with_exit_values=config.propagate_exit_values,
                        scheduler=scheduler,
                    ),
                )
        finally:
            sched_stats = scheduler.finish()

        transform = None
        if run_transform:
            transform = timed(
                "transform",
                lambda: CompilationPipeline(config)._run_transform(
                    program, symbols, modref, aliases, fs, returns
                ),
            )

        if region is not None and region.delta.dropped_procs:
            self.cache.evict_procs(region.delta.dropped_procs)

        result = PipelineResult(
            program=program,
            symbols=symbols,
            pcg=pcg,
            aliases=aliases,
            modref=modref,
            use=use,
            fi=fi,
            fs=fs,
            returns=returns,
            transform=transform,
            timings=timings,
            config=config,
            sched=sched_stats,
            obs=obs if obs.enabled else None,
        )
        self.result = result
        self.last_region = region
        self._prev_inputs = (pcg, aliases, modref, fi)
        edit_batch = len(self._edited)
        self._edited.clear()
        self._full_dirty = False

        stats = self.stats
        stats.analyses += 1
        stats.last_procs = len(pcg.nodes)
        stats.last_dirty = (
            len(region.fs_dirty) if region is not None else len(pcg.nodes)
        )
        stats.last_reused = sched_stats.tasks_reused
        stats.last_cached = sched_stats.tasks_cached
        stats.last_engine_runs = sched_stats.tasks_run
        stats.total_engine_runs += sched_stats.tasks_run
        stats.total_reused += sched_stats.tasks_reused

        metrics = obs.metrics
        if metrics.enabled:
            metrics.counter("session.analyses").inc()
            if edit_batch:
                metrics.counter("session.edits").inc(edit_batch)
            metrics.gauge("session.procs").set(stats.last_procs)
            metrics.gauge("session.dirty").set(stats.last_dirty)
            metrics.gauge("session.reused").set(stats.last_reused)
            metrics.gauge("session.engine_runs").set(stats.last_engine_runs)
            metrics.gauge("session.reuse_rate").set(stats.reuse_rate)
            if stats.last_procs:
                metrics.histogram("session.dirty_fraction").observe(
                    stats.last_dirty / stats.last_procs
                )
        return result

    def report(self) -> str:
        """The deterministic analysis report of the last analyze()."""
        from repro.core.report import analysis_report

        if self.result is None:
            raise ValueError("no analysis yet: call analyze() first")
        return analysis_report(self.result)

    # ------------------------------------------------------------------
    # Diagnostics.
    # ------------------------------------------------------------------

    def _diag_stale_procs(self, prev, prev_table, result) -> Set[str]:
        """Procedures whose cached per-procedure findings may be wrong.

        A procedure's findings depend on its own flow-sensitive result
        (compared by object identity — the clean-copy path preserves it),
        its own alias pairs, and each callee's formals/MOD/REF/USE rows
        (USE changes do not dirty the FS region, so identity alone is not
        enough for the dead-store check).  Whole-program inputs (globals,
        entry) force ``_full_dirty`` and thus a fresh result with all-new
        intra objects, so they need no separate handling here.
        """
        stale: Set[str] = set()
        for proc in result.pcg.nodes:
            if proc not in prev_table:
                stale.add(proc)
                continue
            if prev.fs.intra.get(proc) is not result.fs.intra.get(proc):
                stale.add(proc)
                continue
            if prev.aliases.pairs_of(proc) != result.aliases.pairs_of(proc):
                stale.add(proc)
                continue
            for site in result.symbols[proc].call_sites:
                callee = site.callee
                if callee not in result.symbols or callee not in prev.symbols:
                    stale.add(proc)
                    break
                if (
                    prev.symbols[callee].formals
                    != result.symbols[callee].formals
                    or prev.modref.mod_of(callee) != result.modref.mod_of(callee)
                    or prev.modref.ref_of(callee) != result.modref.ref_of(callee)
                    or prev.use.use_of(callee) != result.use.use_of(callee)
                ):
                    stale.add(proc)
                    break
        return stale

    def diagnostics(self, options=None):
        """Lint the current program, re-checking only the dirty region.

        Runs :meth:`analyze` first if there are pending edits (or no
        analysis yet), then serves per-procedure findings from the session
        cache for every procedure whose diagnostic inputs are unchanged.
        Program-wide checks (use-before-init, dead procedures, fallback
        notes, the optional sanitizer) are cheap and always re-run.  The
        returned :class:`~repro.diag.engine.DiagnosticsResult` renders
        byte-identically to a cold ``check_source`` over the same text.
        """
        from repro.diag.engine import (
            DiagOptions,
            procedure_findings,
            run_diagnostics,
        )

        if self.result is None or self._edited or self._full_dirty:
            self.analyze()
        result = self.result
        cached = self._diag_cache
        if cached is not None and cached[0] is result:
            per_proc = cached[1]
            recomputed: Set[str] = set()
        else:
            if cached is None:
                prev_result, prev_table = None, {}
            else:
                prev_result, prev_table = cached
            if prev_result is None:
                recomputed = set(result.pcg.nodes)
            else:
                recomputed = self._diag_stale_procs(
                    prev_result, prev_table, result
                )
            fresh = procedure_findings(
                result, procs=sorted(recomputed), obs=self.obs
            )
            per_proc = {
                proc: fresh[proc] if proc in fresh else prev_table[proc]
                for proc in result.pcg.nodes
            }
            self._diag_cache = (result, per_proc)

        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter("session.diag_runs").inc()
            metrics.gauge("session.diag_recomputed").set(len(recomputed))
            metrics.gauge("session.diag_reused").set(
                len(per_proc) - len(recomputed)
            )

        if options is None:
            options = DiagOptions.from_config(self.config)
        return run_diagnostics(
            result, options, obs=self.obs, proc_findings=per_proc
        )


def _tables_complete(proc, fs_prev: FSResult, symbols, pcg, modref, program) -> bool:
    """Can ``proc``'s previous entry tables be copied without gaps?

    Defensive demotion: the dirty-region computation should already catch
    every case where the key sets shift (formal lists and ref-global sets
    only change when the procedure or a summary changed), but a procedure
    with incomplete previous tables re-analyzes instead of crashing.
    """
    if proc not in fs_prev.intra:
        return False
    if proc == pcg.entry:
        return all(
            (proc, name) in fs_prev.entry_globals
            for name in program.initial_globals()
        )
    return all(
        (proc, formal) in fs_prev.entry_formals
        for formal in symbols[proc].formals
    ) and all(
        (proc, name) in fs_prev.entry_globals
        for name in modref.ref_globals(proc)
    )
