"""Edit-workload harness for incremental analysis sessions.

Run as a module::

    PYTHONPATH=src python -m repro.session.workload --edits 50 \
        --metrics-json session_metrics.json

Drives a deterministic stream of single-procedure mutations (from
:mod:`repro.session.mutate`) over long-lived sessions on the synthetic
benchmark suite, and checks the PR's acceptance criteria on every edit:

1. **Byte identity** — the session's deterministic analysis report equals a
   cold :func:`repro.api.analyze` run over the same mutated program.
2. **Strict reuse** — the session ran the intraprocedural engine on fewer
   procedures than a cold run would (``engine runs < |PCG|``) for every
   single-procedure edit, and the aggregate session reuse rate is nonzero.

Exits nonzero on any violation; ``--metrics-json`` exports the session
counters for the CI artifact.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.bench.suite import SUITE, build_benchmark_source
from repro.core.config import ICPConfig
from repro.core.metrics import absorb_session_metrics
from repro.core.report import analysis_report
from repro.obs import Observability
from repro.session.mutate import mutated_source, render_procedure
from repro.session.session import AnalysisSession

from repro.core.driver import analyze


def run_workload(
    edits: int,
    seed: int = 0,
    names: Optional[List[str]] = None,
    scale: int = 1,
    workers: int = 1,
    out=None,
) -> dict:
    """Run the edit workload; returns a summary dict (see keys below).

    ``failures`` counts report mismatches; ``full_reruns`` counts edits where
    the session re-ran the engine on every procedure (allowed only for edits
    the dirty-region analysis cannot contain, never for the literal-only
    mutations generated here).
    """
    out = out if out is not None else sys.stdout
    rng = random.Random(seed)
    requested = list(names) if names else list(SUITE)
    unknown = sorted(set(requested) - set(SUITE))
    if unknown:
        raise SystemExit(f"unknown benchmarks: {unknown}; known: {sorted(SUITE)}")

    config = ICPConfig(workers=workers, cache=True)
    cold_config = ICPConfig()
    sessions = {
        name: AnalysisSession(build_benchmark_source(SUITE[name], scale), config)
        for name in requested
    }
    for session in sessions.values():
        session.analyze()  # cold baseline: everything dirty once

    failures = 0
    full_reruns = 0
    skipped = 0
    total_engine_runs = 0
    total_procs = 0
    for edit in range(edits):
        name = requested[edit % len(requested)]
        session = sessions[name]
        procs = session.program.procedures
        changed = False
        target = procs[0]
        for _ in range(8):  # literal-free procedures mutate to no-ops; retry
            target = procs[rng.randrange(len(procs))]
            changed = session.update(
                target.name, mutated_source(target, rng.randrange(1 << 30))
            )
            if changed:
                break
        if not changed:
            skipped += 1
            continue
        result = session.analyze()
        cold = analyze(session.program, cold_config)

        procs_total = len(result.pcg.nodes)
        engine_runs = result.sched.tasks_run if result.sched else procs_total
        total_engine_runs += engine_runs
        total_procs += procs_total
        line = (
            f"[{edit + 1}/{edits}] {name}: edited {target.name!r}, "
            f"engine {engine_runs}/{procs_total}, "
            f"reused {result.sched.tasks_reused}, "
            f"cached {result.sched.tasks_cached}"
        )
        if analysis_report(result) != analysis_report(cold):
            failures += 1
            line += "  REPORT MISMATCH"
        if engine_runs >= procs_total:
            full_reruns += 1
            line += "  NO REUSE"
        print(line, file=out)

    reuse_rate = (
        1.0 - total_engine_runs / total_procs if total_procs else 0.0
    )
    summary = {
        "edits": edits,
        "applied": edits - skipped,
        "skipped": skipped,
        "failures": failures,
        "full_reruns": full_reruns,
        "total_engine_runs": total_engine_runs,
        "total_procs": total_procs,
        "aggregate_reuse_rate": reuse_rate,
        "sessions": sessions,
    }
    print(
        f"workload: {edits - skipped} edits applied over {len(requested)} "
        f"sessions, engine ran {total_engine_runs}/{total_procs} "
        f"procedure-analyses (aggregate reuse rate {reuse_rate:.2%}), "
        f"{failures} report mismatches, {full_reruns} full re-runs",
        file=out,
    )
    return summary


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.session.workload",
        description="differential edit workload for AnalysisSession",
    )
    parser.add_argument("--edits", type=int, default=50,
                        help="number of single-procedure edits (default 50)")
    parser.add_argument("--seed", type=int, default=0,
                        help="mutation RNG seed (default 0)")
    parser.add_argument("--names", nargs="*", metavar="BENCH",
                        help="suite benchmarks to drive (default: all)")
    parser.add_argument("--scale", type=int, default=1,
                        help="suite scale factor (default 1)")
    parser.add_argument("--workers", type=int, default=1,
                        help="session scheduler workers (default 1)")
    parser.add_argument("--metrics-json", metavar="OUT.json", dest="metrics_json",
                        help="write aggregate session metrics as JSON")
    args = parser.parse_args(argv)

    summary = run_workload(
        edits=args.edits,
        seed=args.seed,
        names=args.names,
        scale=args.scale,
        workers=args.workers,
    )

    if args.metrics_json:
        obs = Observability.create(metrics=True)
        registry = obs.metrics
        registry.gauge("workload.edits").set(summary["edits"])
        registry.gauge("workload.applied").set(summary["applied"])
        registry.gauge("workload.failures").set(summary["failures"])
        registry.gauge("workload.full_reruns").set(summary["full_reruns"])
        registry.gauge("workload.total_engine_runs").set(
            summary["total_engine_runs"]
        )
        registry.gauge("workload.total_procs").set(summary["total_procs"])
        registry.gauge("workload.aggregate_reuse_rate").set(
            summary["aggregate_reuse_rate"]
        )
        for name, session in summary["sessions"].items():
            absorb_session_metrics(registry, session, prefix=f"session.{name}")
        registry.write(args.metrics_json)
        print(f"metrics snapshot written to {args.metrics_json}", file=sys.stderr)

    if summary["failures"]:
        print("FAIL: session reports diverged from cold analysis", file=sys.stderr)
        return 1
    if summary["full_reruns"]:
        print("FAIL: some edits re-ran the engine on every procedure",
              file=sys.stderr)
        return 1
    if summary["applied"] and summary["aggregate_reuse_rate"] <= 0.0:
        print("FAIL: aggregate session reuse rate is zero", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
