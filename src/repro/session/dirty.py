"""Dirty-region derivation for incremental re-analysis.

The paper's invariant makes incrementality tractable: each procedure is
analyzed exactly once, and its analysis is a pure function of

- its own source,
- its entry environment (values its *non-fallback callers* recorded at the
  contributing call sites, or the FI solution on fallback edges),
- the effect summaries it consults (callee MOD/REF closed under its own
  alias pairs), and
- the configuration.

So after an edit, the procedures whose flow-sensitive analysis may differ
are exactly the *forward closure* over the new PCG of a seed set capturing
every changed input:

- the edited procedures themselves, and procedures newly reachable;
- procedures whose incoming edge structure changed — including edges whose
  fallback classification flipped, since RPO is a global property of the
  graph and a local edit elsewhere can reclassify untouched edges;
- procedures whose outgoing edge structure changed (conservative: their
  call-site layout is part of their body, so this usually coincides with
  "edited");
- procedures whose own alias pairs or MOD/REF summary changed, and every
  caller of a MOD/REF-changed callee (effect binding);
- when the flow-insensitive solution changed at all, every procedure with
  an incoming fallback edge (fallback entry values come from FI).

The closure follows caller→callee edges: a dirty procedure's re-analysis
can change the values it records at call sites, which feed its callees'
entry environments.  Everything outside the closure receives byte-identical
inputs and therefore reproduces its previous result — which the session
copies instead of recomputing.

USE flows the other way (callee→caller over the reverse traversal), and is
cheap enough that seeds suffice: :func:`repro.summary.use.compute_use`
propagates changes during its reversed-RPO sweep by comparing each freshly
computed summary against the previous one, so only the *seed* procedures —
edited bodies, structure changes, and REF-fallback consumers of a
REF-changed callee — need listing here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Set

from repro.callgraph.pcg import PCG, PCGDelta, diff_pcg
from repro.core.flow_insensitive import FIResult
from repro.sched.cache import value_token
from repro.summary.alias import AliasInfo, changed_alias_procs
from repro.summary.modref import ModRefInfo, changed_modref_procs


@dataclass(frozen=True)
class DirtyRegion:
    """What one batch of edits invalidates, per downstream pass."""

    #: Procedures whose flow-sensitive analysis must re-run (closure).
    fs_dirty: FrozenSet[str]
    #: Seed procedures for the incremental USE sweep (propagation happens
    #: inside :func:`repro.summary.use.compute_use`).
    use_seeds: FrozenSet[str]
    #: The structural PCG difference that fed the seeds (diagnostics).
    delta: PCGDelta
    #: Whether the flow-insensitive solution changed (forces fallback
    #: receivers dirty).
    fi_changed: bool


def forward_closure(pcg: PCG, seeds: Iterable[str]) -> Set[str]:
    """Seeds plus everything reachable from them over caller→callee edges."""
    closed: Set[str] = set()
    frontier = [proc for proc in seeds if proc in pcg.reachable]
    closed.update(frontier)
    while frontier:
        proc = frontier.pop()
        for edge in pcg.edges_out_of(proc):
            if edge.callee not in closed:
                closed.add(edge.callee)
                frontier.append(edge.callee)
    return closed


def fi_snapshot(fi: FIResult) -> str:
    """Type-sensitive rendering of the FI facts the FS fallback consumes.

    Fallback edges read ``fi.arg_value(site, index)`` and
    ``fi.global_constants``; both are tokenized with the payload type baked
    in, because ``Const(2) == Const(2.0)`` under plain dataclass equality
    while the two propagate differently.
    """
    parts = [
        f"g:{name}={type(value).__name__}:{value!r}"
        for name, value in sorted(fi.global_constants.items())
    ]
    parts.extend(
        f"a:{caller}:{site}:{pos}={value_token(value)}"
        for (caller, site, pos), value in sorted(fi.arg_values.items())
    )
    return "\n".join(parts)


def compute_dirty_region(
    edited: Set[str],
    old_pcg: PCG,
    new_pcg: PCG,
    old_aliases: AliasInfo,
    new_aliases: AliasInfo,
    old_modref: ModRefInfo,
    new_modref: ModRefInfo,
    old_fi: FIResult,
    new_fi: FIResult,
) -> DirtyRegion:
    """Derive the dirty region of one edit batch from old/new pipeline inputs.

    Every argument pair is cheap to recompute whole-program (no
    intraprocedural engine involved); only the flow-sensitive pass — the
    expensive one — is gated by the region computed here.
    """
    delta = diff_pcg(old_pcg, new_pcg)
    alias_changed = changed_alias_procs(old_aliases, new_aliases)
    modref_changed = changed_modref_procs(old_modref, new_modref)
    fi_changed = fi_snapshot(old_fi) != fi_snapshot(new_fi)
    nodes = new_pcg.reachable

    seeds: Set[str] = set(edited) & nodes
    seeds |= delta.new_procs
    seeds |= delta.incoming_changed
    seeds |= delta.outgoing_changed
    seeds |= alias_changed & nodes
    seeds |= modref_changed & nodes
    for proc in nodes:
        if proc in seeds:
            continue
        for edge in new_pcg.edges_out_of(proc):
            if edge.callee in modref_changed:
                seeds.add(proc)  # effect summaries at its call sites changed
                break
    if fi_changed:
        seeds.update(
            edge.callee for edge in new_pcg.fallback_edges
        )

    fs_dirty = forward_closure(new_pcg, seeds)

    ref_changed = {
        proc
        for proc in modref_changed
        if old_modref.ref.get(proc) != new_modref.ref.get(proc)
    }
    use_seeds: Set[str] = set(edited) & nodes
    use_seeds |= delta.new_procs
    use_seeds |= delta.outgoing_changed
    for proc in nodes:
        if proc in use_seeds:
            continue
        position = new_pcg.rpo_position(proc)
        for edge in new_pcg.edges_out_of(proc):
            if (
                new_pcg.rpo_position(edge.callee) <= position
                and edge.callee in ref_changed
            ):
                use_seeds.add(proc)  # its REF-fallback input changed
                break

    return DirtyRegion(
        fs_dirty=frozenset(fs_dirty),
        use_seeds=frozenset(use_seeds),
        delta=delta,
        fi_changed=fi_changed,
    )
