"""Incremental re-analysis sessions.

A session parses a program once, keeps every pipeline artifact alive, and
re-analyzes only the call-graph region an edit can affect — see
:mod:`repro.session.session` for the model and
:mod:`repro.session.dirty` for the dirty-region derivation.
"""

from repro.session.dirty import (
    DirtyRegion,
    compute_dirty_region,
    forward_closure,
)
from repro.session.session import AnalysisSession, SessionStats

__all__ = [
    "AnalysisSession",
    "SessionStats",
    "DirtyRegion",
    "compute_dirty_region",
    "forward_closure",
]
