"""Flow-sensitive interprocedural constant propagation (Carini & Hind, PLDI 1995).

This package is a full, from-scratch reproduction of the paper's system:

- :mod:`repro.lang` — the MiniF language frontend (a Fortran-semantics mini
  language: by-reference parameters, ``global`` variables, ``init`` blocks).
- :mod:`repro.ir` — CFG, dominators, SSA form, and the constant lattice.
- :mod:`repro.analysis` — Wegman–Zadeck sparse conditional constant propagation
  and the constant-substitution transformation.
- :mod:`repro.callgraph` — the program call graph (PCG).
- :mod:`repro.summary` — interprocedural alias, MOD/REF and USE summaries.
- :mod:`repro.core` — the paper's contribution: flow-insensitive (Figure 3) and
  flow-sensitive (Figure 4) interprocedural constant propagation, the
  jump-function baselines, the metrics of Section 4, and the Figure 2 driver.
- :mod:`repro.interp` — a reference interpreter used to validate soundness.
- :mod:`repro.bench` — paper programs, workload generator, and table harness.

The stable public surface is :mod:`repro.api` (re-exported here)::

    from repro.api import analyze, AnalysisSession, ICPConfig
    result = analyze(source_text)
    print(result.summary())

    session = AnalysisSession(source_text)
    session.analyze()
    session.update("helper", new_helper_source)
    result = session.analyze()   # re-analyzes only the affected PCG region
"""

from repro.api import (
    AnalysisSession,
    CompilationPipeline,
    ICPConfig,
    PersistentCache,
    PipelineResult,
    RemoteStore,
    SummaryStore,
    analyze,
    analyze_program,
    connect_store,
    open_store,
    parse_program,
)

__all__ = [
    "AnalysisSession",
    "CompilationPipeline",
    "ICPConfig",
    "PersistentCache",
    "PipelineResult",
    "RemoteStore",
    "SummaryStore",
    "analyze",
    "analyze_program",
    "connect_store",
    "open_store",
    "parse_program",
]

__version__ = "1.0.0"
