"""Static interprocedural characteristics of a program.

The paper points to companion studies ("Compile-Time Measurements of
Interprocedural Data-Sharing in FORTRAN Programs" [7] and "A comparison of
interprocedural array analysis methods" [17]) for the interprocedural
characteristics of the benchmarks.  This module computes the equivalent
statistics for any MiniF program, so the synthetic analogs can be compared
against real workloads structurally, not just through the constant metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

from repro.callgraph.pcg import build_pcg
from repro.lang import ast
from repro.lang.parser import parse_program
from repro.lang.symbols import collect_symbols


@dataclass
class ProgramCharacteristics:
    """Structural statistics over the reachable part of a program."""

    name: str
    procedures: int = 0
    call_sites: int = 0
    call_edges: int = 0
    back_edges: int = 0
    arguments: int = 0
    formals: int = 0
    globals_declared: int = 0
    globals_initialized: int = 0
    literal_args: int = 0
    byref_args: int = 0            # bare-variable (reference) arguments
    byref_global_args: int = 0     # globals passed by reference
    statements: int = 0
    max_pcg_depth: int = 0
    leaf_procedures: int = 0

    @property
    def args_per_site(self) -> float:
        return self.arguments / self.call_sites if self.call_sites else 0.0

    @property
    def literal_arg_fraction(self) -> float:
        return self.literal_args / self.arguments if self.arguments else 0.0

    @property
    def byref_arg_fraction(self) -> float:
        return self.byref_args / self.arguments if self.arguments else 0.0

    def as_dict(self) -> Dict[str, Union[int, float]]:
        return {
            "procedures": self.procedures,
            "call_sites": self.call_sites,
            "call_edges": self.call_edges,
            "back_edges": self.back_edges,
            "arguments": self.arguments,
            "formals": self.formals,
            "globals_declared": self.globals_declared,
            "globals_initialized": self.globals_initialized,
            "literal_args": self.literal_args,
            "byref_args": self.byref_args,
            "byref_global_args": self.byref_global_args,
            "statements": self.statements,
            "max_pcg_depth": self.max_pcg_depth,
            "leaf_procedures": self.leaf_procedures,
            "args_per_site": round(self.args_per_site, 2),
            "literal_arg_fraction": round(self.literal_arg_fraction, 3),
            "byref_arg_fraction": round(self.byref_arg_fraction, 3),
        }


def characterize(
    source: Union[str, ast.Program], name: str = "program"
) -> ProgramCharacteristics:
    """Compute structural statistics for ``source``."""
    program = parse_program(source) if isinstance(source, str) else source
    symbols = collect_symbols(program)
    pcg = build_pcg(program, symbols)
    globals_set = program.global_set()

    stats = ProgramCharacteristics(name=name)
    stats.globals_declared = len(program.global_names)
    stats.globals_initialized = len(program.initial_globals())
    stats.procedures = len(pcg.nodes)
    stats.call_edges = len(pcg.edges)
    stats.back_edges = len(pcg.back_edges)

    for proc_name in pcg.nodes:
        proc_symbols = symbols[proc_name]
        stats.formals += len(proc_symbols.formals)
        if not proc_symbols.call_sites:
            stats.leaf_procedures += 1
        stats.call_sites += len(proc_symbols.call_sites)
        proc = program.procedure(proc_name)
        stats.statements += sum(1 for _ in ast.walk_statements(proc.body))
        for site in proc_symbols.call_sites:
            stats.arguments += len(site.args)
            for arg in site.args:
                if ast.literal_value(arg) is not None:
                    stats.literal_args += 1
                if isinstance(arg, ast.Var):
                    stats.byref_args += 1
                    if arg.name in globals_set:
                        stats.byref_global_args += 1

    stats.max_pcg_depth = _max_depth(pcg)
    return stats


def _max_depth(pcg) -> int:
    """Longest acyclic call path from the entry (back edges ignored)."""
    position = {name: i for i, name in enumerate(pcg.rpo)}
    depth: Dict[str, int] = {name: 0 for name in pcg.rpo}
    for name in pcg.rpo:
        for edge in pcg.edges_out_of(name):
            if position[edge.callee] > position[name]:  # forward edge only
                depth[edge.callee] = max(depth[edge.callee], depth[name] + 1)
    return max(depth.values(), default=0)


def characterize_suite() -> List[ProgramCharacteristics]:
    """Characteristics of every synthetic suite benchmark."""
    from repro.bench.suite import SUITE, build_benchmark

    return [
        characterize(build_benchmark(profile), name)
        for name, profile in SUITE.items()
    ]


def format_characteristics(rows: List[ProgramCharacteristics]) -> str:
    header = (
        f"{'program':<16} {'procs':>6} {'sites':>6} {'args':>6} {'FP':>5} "
        f"{'glob':>5} {'lit%':>6} {'ref%':>6} {'depth':>6} {'stmts':>6}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.name:<16} {row.procedures:>6} {row.call_sites:>6} "
            f"{row.arguments:>6} {row.formals:>5} {row.globals_declared:>5} "
            f"{row.literal_arg_fraction * 100:>5.1f}% "
            f"{row.byref_arg_fraction * 100:>5.1f}% "
            f"{row.max_pcg_depth:>6} {row.statements:>6}"
        )
    return "\n".join(lines)
