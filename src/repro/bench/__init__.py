"""Workloads: paper programs, random generator, SPEC-analog suite, tables."""

from repro.bench.programs import (
    figure1_program,
    figure1_source,
    mutual_recursion_program,
    recursion_program,
)
from repro.bench.generator import GeneratorConfig, generate_program
from repro.bench.suite import SUITE, BenchmarkProfile, build_benchmark
from repro.bench.tables import (
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)

__all__ = [
    "BenchmarkProfile",
    "GeneratorConfig",
    "SUITE",
    "build_benchmark",
    "figure1_program",
    "figure1_source",
    "generate_program",
    "mutual_recursion_program",
    "recursion_program",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
]
