"""A corpus of realistic hand-written MiniF programs.

Small, recognizable algorithms exercising every language feature, with the
output each program must produce.  Used across the test suite as
ground-truth workloads (realistic control flow beyond what the random
generator emits) and as documentation of MiniF by example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

from repro.lang import ast
from repro.lang.parser import parse_program

Value = Union[int, float]


@dataclass(frozen=True)
class CorpusProgram:
    """One corpus entry: source plus its expected output."""

    name: str
    source: str
    expected_output: List[Value]

    def parse(self) -> ast.Program:
        return parse_program(self.source)


_CORPUS: List[CorpusProgram] = []


def _add(name: str, source: str, expected: List[Value]) -> None:
    _CORPUS.append(CorpusProgram(name, source, expected))


_add(
    "fibonacci",
    """
    proc main() {
        n = 10;
        r = fib(n);
        print(r);
    }
    proc fib(n) {
        if (n < 2) { return n; }
        a = fib(n - 1);
        b = fib(n - 2);
        return a + b;
    }
    """,
    [55],
)

_add(
    "gcd",
    """
    proc main() {
        g = gcd(252, 105);
        print(g);
        g = gcd(17, 5);
        print(g);
    }
    proc gcd(a, b) {
        while (b != 0) {
            t = a % b;
            a = b;
            b = t;
        }
        return a;
    }
    """,
    [21, 1],
)

_add(
    "collatz_steps",
    """
    proc main() {
        steps = count(27);
        print(steps);
    }
    proc count(n) {
        steps = 0;
        while (n != 1) {
            if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
            steps = steps + 1;
        }
        return steps;
    }
    """,
    [111],
)

_add(
    "power_table",
    """
    # Accumulator passed by reference (the Fortran out-parameter idiom).
    proc main() {
        base = 3;
        e = 0;
        while (e <= 4) {
            # `e + 0` passes by value: power's countdown must not write
            # through to our loop counter (by-reference semantics!).
            call power(base, e + 0, result);
            print(result);
            e = e + 1;
        }
    }
    proc power(b, e, out) {
        out = 1;
        while (e > 0) {
            out = out * b;
            e = e - 1;
        }
    }
    """,
    [1, 3, 9, 27, 81],
)

_add(
    "running_statistics",
    """
    # Globals as COMMON-block state mutated across procedures.
    global total, count;
    init { total = 0; count = 0; }
    proc main() {
        call record(4);
        call record(8);
        call record(12);
        print(total);
        avg = mean();
        print(avg);
    }
    proc record(x) {
        total = total + x;
        count = count + 1;
    }
    proc mean() {
        return total / count;
    }
    """,
    [24, 8],
)

_add(
    "fixed_point_sqrt",
    """
    # Newton iteration on floats with an epsilon-controlled loop.
    proc main() {
        r = sqrt_newton(2.0);
        scaled = r * 1000000;
        print(scaled - scaled % 1);
    }
    proc sqrt_newton(x) {
        guess = x;
        i = 20;
        while (i > 0) {
            guess = (guess + x / guess) / 2.0;
            i = i - 1;
        }
        return guess;
    }
    """,
    [1414213.0],
)

_add(
    "state_machine",
    """
    # A little DFA driven by a mode global; heavy branching on constants.
    global state;
    proc main() {
        state = 0;
        call step(1);
        call step(1);
        call step(0);
        call step(1);
        call step(1);
        print(state);
    }
    proc step(bit) {
        if (state == 0) {
            if (bit) { state = 1; }
        } else {
            if (state == 1) {
                if (bit) { state = 2; } else { state = 0; }
            } else {
                if (bit) { state = 2; } else { state = 0; }
            }
        }
    }
    """,
    [2],
)

_add(
    "triangular_numbers",
    """
    # Nested loops with an interprocedural constant stride.
    proc main() {
        call table(5, 1);
    }
    proc table(rows, stride) {
        i = 1;
        while (i <= rows) {
            t = triangle(i, stride);
            print(t);
            i = i + stride;
        }
    }
    proc triangle(n, stride) {
        s = 0;
        k = 1;
        while (k <= n) {
            s = s + k;
            k = k + stride;
        }
        return s;
    }
    """,
    [1, 3, 6, 10, 15],
)


_add(
    "sieve_count",
    """
    # Sieve of Eratosthenes over an array (the paper's unpropagated values).
    proc main() {
        n = 30;
        c = count_primes(n);
        print(c);
    }
    proc count_primes(n) {
        i = 0;
        while (i <= n) { flags[i] = 1; i = i + 1; }
        p = 2;
        while (p * p <= n) {
            if (flags[p] == 1) {
                m = p * p;
                while (m <= n) { flags[m] = 0; m = m + p; }
            }
            p = p + 1;
        }
        count = 0;
        k = 2;
        while (k <= n) { count = count + flags[k]; k = k + 1; }
        return count;
    }
    """,
    [10],
)

_add(
    "dot_product",
    """
    # Whole arrays passed by reference into a worker procedure.
    proc main() {
        i = 0;
        while (i < 4) { xs[i] = i + 1; ys[i] = 10 - i; i = i + 1; }
        call dot(xs, ys, 4, result);
        print(result);
    }
    proc dot(a, b, n, out) {
        out = 0;
        i = 0;
        while (i < n) { out = out + a[i] * b[i]; i = i + 1; }
    }
    """,
    [80],
)


def corpus() -> List[CorpusProgram]:
    """All corpus programs (immutable entries; copy before mutating ASTs)."""
    return list(_CORPUS)


def corpus_by_name() -> Dict[str, CorpusProgram]:
    return {entry.name: entry for entry in _CORPUS}
