"""Seeded random MiniF program generator.

Produces *closed* (no inputs), *terminating*, *runtime-error-free* programs:

- the call graph is a DAG by construction (procedure ``i`` only calls
  procedures with larger indices), unless ``allow_recursion`` appends a
  guarded counter-recursion pair;
- every ``while`` loop is a dedicated bounded counter that the loop body is
  forbidden to touch;
- every variable is provably initialized before use (conditional arms only
  promote variables assigned in *both* arms);
- division and remainder only occur with non-zero literal divisors.

These guarantees make the generator usable as a hypothesis workhorse: the
reference interpreter executes every generated program to completion, so
analysis claims can be checked against observed values without conditioning.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.lang import ast


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape parameters for random program generation."""

    n_procs: int = 5
    n_globals: int = 3
    n_init_globals: int = 2
    max_formals: int = 4
    max_stmts: int = 7
    max_block_depth: int = 2
    max_expr_depth: int = 3
    p_if: float = 0.20
    p_while: float = 0.10
    p_call: float = 0.30
    p_print: float = 0.15
    p_global_target: float = 0.25
    p_float: float = 0.20
    p_literal_arg: float = 0.45
    p_bare_var_arg: float = 0.35
    p_array_block: float = 0.08
    allow_value_calls: bool = True
    allow_recursion: bool = False


_INT_POOL = (-7, -2, -1, 0, 1, 2, 3, 4, 5, 8, 10, 100)
_FLOAT_POOL = (-2.5, -1.0, 0.0, 0.5, 1.0, 1.5, 2.5, 4.0)
_ARITH_OPS = ("+", "-", "*")
_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


class _Names:
    """Distinct, collision-free name spaces."""

    @staticmethod
    def proc(index: int) -> str:
        return "main" if index == 0 else f"p{index}"

    @staticmethod
    def formal(index: int) -> str:
        return f"f{index}"

    @staticmethod
    def local(index: int) -> str:
        return f"v{index}"

    @staticmethod
    def glob(index: int) -> str:
        return f"g{index}"


@dataclass
class _ProcPlan:
    index: int
    name: str
    formals: List[str]
    is_function: bool  # may be used in value position (has `return expr`)


@dataclass
class _Ctx:
    """Generation context inside one procedure."""

    initialized: Set[str]
    protected: Set[str] = field(default_factory=set)  # loop counters
    local_counter: List[int] = field(default_factory=lambda: [0])

    def fresh_local(self) -> str:
        self.local_counter[0] += 1
        return _Names.local(self.local_counter[0])

    def snapshot(self) -> "_Ctx":
        return _Ctx(
            initialized=set(self.initialized),
            protected=set(self.protected),
            local_counter=self.local_counter,  # shared on purpose
        )


class _Generator:
    def __init__(self, rng: random.Random, config: GeneratorConfig):
        self._rng = rng
        self._config = config
        self._globals = [_Names.glob(i + 1) for i in range(config.n_globals)]
        self._init_globals = self._globals[: config.n_init_globals]
        self._plans: List[_ProcPlan] = []

    # ------------------------------------------------------------------

    def generate(self) -> ast.Program:
        rng = self._rng
        config = self._config
        for index in range(config.n_procs):
            n_formals = 0 if index == 0 else rng.randint(0, config.max_formals)
            is_function = (
                config.allow_value_calls and index > 0 and rng.random() < 0.4
            )
            self._plans.append(
                _ProcPlan(
                    index=index,
                    name=_Names.proc(index),
                    formals=[_Names.formal(i + 1) for i in range(n_formals)],
                    is_function=is_function,
                )
            )

        inits = [
            ast.GlobalInit(name, self._literal_value())
            for name in self._init_globals
        ]
        procedures = [self._gen_procedure(plan) for plan in self._plans]
        if config.allow_recursion:
            procedures.extend(self._recursive_pair())
            call = ast.CallStmt("rec_a", [ast.IntLit(rng.randint(2, 6)), ast.IntLit(3)])
            procedures[0].body.stmts.append(call)
        return ast.Program(list(self._globals), inits, procedures)

    # ------------------------------------------------------------------

    def _literal_value(self) -> ast.Value:
        if self._rng.random() < self._config.p_float:
            return self._rng.choice(_FLOAT_POOL)
        return self._rng.choice(_INT_POOL)

    def _literal_expr(self) -> ast.Expr:
        value = self._literal_value()
        if isinstance(value, float):
            if value < 0:
                return ast.Unary("-", ast.FloatLit(-value))
            return ast.FloatLit(value)
        if value < 0:
            return ast.Unary("-", ast.IntLit(-value))
        return ast.IntLit(value)

    def _gen_procedure(self, plan: _ProcPlan) -> ast.Procedure:
        ctx = _Ctx(initialized=set(plan.formals) | set(self._init_globals))
        stmts = self._gen_stmts(plan, ctx, depth=0)
        if plan.index == 0:
            # main always observes something, so output comparison is useful.
            expr = self._gen_expr(ctx, 1) if ctx.initialized else ast.IntLit(0)
            stmts.append(ast.Print(expr))
        if plan.is_function:
            stmts.append(ast.Return(self._gen_expr(ctx, 2)))
        return ast.Procedure(plan.name, list(plan.formals), ast.Block(stmts))

    def _gen_stmts(self, plan: _ProcPlan, ctx: _Ctx, depth: int) -> List[ast.Stmt]:
        rng = self._rng
        config = self._config
        count = rng.randint(1, config.max_stmts)
        stmts: List[ast.Stmt] = []
        for _ in range(count):
            roll = rng.random()
            if roll < config.p_if and depth < config.max_block_depth:
                stmts.append(self._gen_if(plan, ctx, depth))
            elif roll < config.p_if + config.p_while and depth < config.max_block_depth:
                stmts.extend(self._gen_while(plan, ctx, depth))
            elif roll < config.p_if + config.p_while + config.p_call:
                call = self._gen_call(plan, ctx)
                if call is not None:
                    stmts.append(call)
                else:
                    stmts.append(self._gen_assign(ctx))
            elif (
                roll < config.p_if + config.p_while + config.p_call + config.p_print
                and ctx.initialized
            ):
                stmts.append(ast.Print(self._gen_expr(ctx, config.max_expr_depth)))
            elif (
                roll
                < config.p_if
                + config.p_while
                + config.p_call
                + config.p_print
                + config.p_array_block
            ):
                stmts.extend(self._gen_array_block(plan, ctx))
            else:
                stmts.append(self._gen_assign(ctx))
        return stmts

    def _gen_array_block(self, plan: _ProcPlan, ctx: _Ctx) -> List[ast.Stmt]:
        """A paired store/load on a per-procedure array (def-before-use)."""
        array = f"r{plan.index}"
        index = self._rng.randint(0, 4)
        store = ast.AssignIndex(
            array, ast.IntLit(index), self._gen_expr(ctx, 2)
        )
        local = ctx.fresh_local()
        load = ast.Assign(local, ast.Index(array, ast.IntLit(index)))
        ctx.initialized.add(local)
        return [store, load]

    def _gen_assign(self, ctx: _Ctx) -> ast.Assign:
        target = self._pick_target(ctx)
        expr = self._gen_expr(ctx, self._config.max_expr_depth)
        ctx.initialized.add(target)
        return ast.Assign(target, expr)

    def _pick_target(self, ctx: _Ctx) -> str:
        rng = self._rng
        candidates: List[str] = []
        if rng.random() < self._config.p_global_target:
            candidates = [g for g in self._globals if g not in ctx.protected]
        if not candidates:
            reusable = [
                v
                for v in ctx.initialized
                if v.startswith("v") and v not in ctx.protected
            ]
            if reusable and rng.random() < 0.5:
                candidates = reusable
            else:
                candidates = [ctx.fresh_local()]
        return rng.choice(candidates)

    def _gen_if(self, plan: _ProcPlan, ctx: _Ctx, depth: int) -> ast.If:
        cond = self._gen_cond(ctx)
        then_ctx = ctx.snapshot()
        else_ctx = ctx.snapshot()
        then_block = ast.Block(self._gen_stmts(plan, then_ctx, depth + 1))
        has_else = self._rng.random() < 0.6
        else_block: Optional[ast.Block] = None
        if has_else:
            else_block = ast.Block(self._gen_stmts(plan, else_ctx, depth + 1))
            ctx.initialized |= then_ctx.initialized & else_ctx.initialized
        # Without an else, only pre-existing facts survive.
        return ast.If(cond, then_block, else_block)

    def _gen_while(self, plan: _ProcPlan, ctx: _Ctx, depth: int) -> List[ast.Stmt]:
        counter = ctx.fresh_local()
        bound = self._rng.randint(1, 3)
        ctx.initialized.add(counter)
        ctx.protected.add(counter)
        body_ctx = ctx.snapshot()
        body = self._gen_stmts(plan, body_ctx, depth + 1)
        body.append(ast.Assign(counter, ast.Binary("-", ast.Var(counter), ast.IntLit(1))))
        ctx.protected.discard(counter)
        loop = ast.While(ast.Binary(">", ast.Var(counter), ast.IntLit(0)), ast.Block(body))
        return [ast.Assign(counter, ast.IntLit(bound)), loop]

    def _gen_call(self, plan: _ProcPlan, ctx: _Ctx) -> Optional[ast.Stmt]:
        rng = self._rng
        callees = [p for p in self._plans if p.index > plan.index]
        if not callees:
            return None
        callee = rng.choice(callees)
        args: List[ast.Expr] = []
        for _ in callee.formals:
            roll = rng.random()
            if roll < self._config.p_literal_arg or not ctx.initialized:
                args.append(self._literal_expr())
            elif roll < self._config.p_literal_arg + self._config.p_bare_var_arg:
                # Loop counters must never escape by reference: a callee
                # store through the formal would break loop termination.
                passable = sorted(ctx.initialized - ctx.protected)
                if passable:
                    args.append(ast.Var(rng.choice(passable)))
                else:
                    args.append(self._literal_expr())
            else:
                args.append(self._gen_expr(ctx, 2))
        if callee.is_function and rng.random() < 0.5:
            target = self._pick_target(ctx)
            ctx.initialized.add(target)
            return ast.CallAssign(target, callee.name, args)
        return ast.CallStmt(callee.name, args)

    def _gen_cond(self, ctx: _Ctx) -> ast.Expr:
        left = self._gen_expr(ctx, 2)
        right = self._gen_expr(ctx, 1)
        comparison = ast.Binary(self._rng.choice(_CMP_OPS), left, right)
        roll = self._rng.random()
        if roll < 0.12:
            other = ast.Binary(
                self._rng.choice(_CMP_OPS),
                self._gen_expr(ctx, 1),
                self._gen_expr(ctx, 1),
            )
            op = self._rng.choice(("and", "or"))
            return ast.Binary(op, comparison, other)
        if roll < 0.18:
            return ast.Unary("not", comparison)
        return comparison

    def _gen_expr(self, ctx: _Ctx, depth: int) -> ast.Expr:
        rng = self._rng
        if depth <= 0 or rng.random() < 0.4:
            if ctx.initialized and rng.random() < 0.6:
                return ast.Var(rng.choice(sorted(ctx.initialized)))
            return self._literal_expr()
        roll = rng.random()
        if roll < 0.75:
            op = rng.choice(_ARITH_OPS)
            return ast.Binary(
                op, self._gen_expr(ctx, depth - 1), self._gen_expr(ctx, depth - 1)
            )
        if roll < 0.85:
            # Division by a non-zero literal keeps execution error-free.
            divisor = rng.choice([2, 3, 4, 5, 2.0])
            op = rng.choice(["/", "%"]) if isinstance(divisor, int) else "/"
            divisor_expr = (
                ast.IntLit(divisor) if isinstance(divisor, int) else ast.FloatLit(divisor)
            )
            return ast.Binary(op, self._gen_expr(ctx, depth - 1), divisor_expr)
        if roll < 0.93:
            return ast.Unary("-", self._gen_expr(ctx, depth - 1))
        return self._gen_cond(ctx)

    def _recursive_pair(self) -> List[ast.Procedure]:
        """A guaranteed-terminating mutually recursive pair (adds PCG cycle)."""
        body_a = ast.Block(
            [
                ast.If(
                    ast.Binary(">", ast.Var("n"), ast.IntLit(0)),
                    ast.Block(
                        [
                            ast.CallStmt(
                                "rec_b",
                                [
                                    ast.Binary("-", ast.Var("n"), ast.IntLit(1)),
                                    ast.Var("k"),
                                ],
                            )
                        ]
                    ),
                    ast.Block([ast.Print(ast.Var("k"))]),
                )
            ]
        )
        body_b = ast.Block(
            [
                ast.If(
                    ast.Binary(">", ast.Var("n"), ast.IntLit(0)),
                    ast.Block(
                        [
                            ast.CallStmt(
                                "rec_a",
                                [
                                    ast.Binary("-", ast.Var("n"), ast.IntLit(1)),
                                    ast.Var("k"),
                                ],
                            )
                        ]
                    ),
                    ast.Block([ast.Print(ast.Binary("+", ast.Var("k"), ast.IntLit(1)))]),
                )
            ]
        )
        return [
            ast.Procedure("rec_a", ["n", "k"], body_a),
            ast.Procedure("rec_b", ["n", "k"], body_b),
        ]


def generate_program(
    seed: int, config: Optional[GeneratorConfig] = None
) -> ast.Program:
    """Generate a deterministic random program from ``seed``."""
    rng = random.Random(seed)
    return _Generator(rng, config or GeneratorConfig()).generate()
