"""Cross-method comparison harness: Figure 1 generalized to the whole suite.

The paper's Figure 1 compares six methods on one example.  This harness runs
*every* implemented method over any workload and counts the constant formal
parameters each discovers, producing a precision spectrum:

    LITERAL <= FI, LITERAL <= INTRA <= PASS-THROUGH <= POLYNOMIAL <= FS
    FI <= FS <= ITERATIVE

(all orderings hold per-claim, not just per-count, and are asserted by
``benchmarks/test_method_spectrum.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.core.config import ICPConfig
from repro.core.driver import analyze
from repro.core.iterative import iterative_flow_sensitive_icp
from repro.core.jump_functions import JumpFunctionKind, jump_function_icp
from repro.ir.lattice import LatticeValue
from repro.lang import ast

FormalKey = Tuple[str, str]

#: Canonical method order, least to most precise.
METHOD_ORDER: Tuple[str, ...] = (
    "literal",
    "flow-insensitive",
    "intra",
    "pass-through",
    "polynomial",
    "flow-sensitive",
    "iterative",
)


@dataclass
class MethodComparison:
    """Constant-formal claims per method for one program."""

    name: str
    claims: Dict[str, Dict[FormalKey, LatticeValue]] = field(default_factory=dict)
    total_formals: int = 0

    def count(self, method: str) -> int:
        return len(self.claims.get(method, {}))

    def counts(self) -> Dict[str, int]:
        return {method: self.count(method) for method in METHOD_ORDER}

    def claim_set(self, method: str) -> Set[FormalKey]:
        return set(self.claims.get(method, {}))


def compare_methods(
    source: Union[str, ast.Program],
    config: Optional[ICPConfig] = None,
    name: str = "program",
) -> MethodComparison:
    """Run all seven methods over ``source`` and collect their claims."""
    config = config or ICPConfig()
    result = analyze(source, config)
    comparison = MethodComparison(name=name)
    comparison.total_formals = sum(
        len(result.symbols[proc].formals) for proc in result.pcg.nodes
    )

    comparison.claims["flow-insensitive"] = {
        key: value
        for key, value in result.fi.formal_values.items()
        if value.is_const
    }
    comparison.claims["flow-sensitive"] = {
        key: value
        for key, value in result.fs.entry_formals.items()
        if value.is_const and key[0] in result.fs.fs_reachable
    }

    kind_names = {
        JumpFunctionKind.LITERAL: "literal",
        JumpFunctionKind.INTRA: "intra",
        JumpFunctionKind.PASS_THROUGH: "pass-through",
        JumpFunctionKind.POLYNOMIAL: "polynomial",
    }
    for kind, method in kind_names.items():
        solution = jump_function_icp(
            result.program, result.symbols, result.pcg, kind,
            result.modref.callsite_mod, config,
            assign_aliases=result.aliases.partners,
        )
        comparison.claims[method] = {
            key: value
            for key, value in solution.formal_values.items()
            if value.is_const
        }

    iterative = iterative_flow_sensitive_icp(
        result.program, result.symbols, result.pcg, result.modref,
        result.aliases, config,
    )
    comparison.claims["iterative"] = {
        key: value
        for key, value in iterative.entry_formals.items()
        if value.is_const and key[0] in iterative.fs_reachable
    }
    return comparison


def compare_suite(
    config: Optional[ICPConfig] = None,
) -> List[MethodComparison]:
    """Run the comparison over every synthetic suite benchmark."""
    from repro.bench.suite import SUITE, build_benchmark

    config = config or ICPConfig()
    return [
        compare_methods(build_benchmark(profile), config, name)
        for name, profile in SUITE.items()
    ]


def format_comparison(rows: List[MethodComparison]) -> str:
    """Render the spectrum as a table (constant formals per method)."""
    header = f"{'program':<16} {'FP':>5} " + " ".join(
        f"{m[:6]:>7}" for m in METHOD_ORDER
    )
    lines = [header]
    for row in rows:
        counts = row.counts()
        lines.append(
            f"{row.name:<16} {row.total_formals:>5} "
            + " ".join(f"{counts[m]:>7}" for m in METHOD_ORDER)
        )
    totals = {m: sum(r.count(m) for r in rows) for m in METHOD_ORDER}
    lines.append(
        f"{'TOTAL':<16} {sum(r.total_formals for r in rows):>5} "
        + " ".join(f"{totals[m]:>7}" for m in METHOD_ORDER)
    )
    return "\n".join(lines)
