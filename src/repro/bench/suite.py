"""Synthetic analogs of the paper's benchmark suite.

The paper measures the Fortran subset of SPECfp92 plus 030.matrix300.  SPEC
sources cannot be redistributed, so each benchmark is a deterministic
synthetic program assembled from *patterns*, each contributing a known
quantity to the paper's metrics:

``literal_pairs``
    a procedure called once with two immediate constants — arguments counted
    by IMM, FI, and FS; both formals constant under every method.
``varying_sites``
    a procedure called from two sites with different immediates — constant
    *arguments* but a varying formal.
``local_const``
    an argument that is a local variable holding a constant, used twice in
    the callee — found by any method with an intraprocedural component
    (FS; INTRA/PASS-THROUGH/POLYNOMIAL jump functions) but invisible to the
    flow-insensitive method.  Drives the FI < POLYNOMIAL gap of Table 5.
``local_const_varying`` (int or float variant)
    a local-constant argument whose formal also receives a *different* value
    from a second site — a flow-sensitive argument win with no formal win
    (the SPICE/DODUC shape).  The float variant vanishes when floating-point
    propagation is disabled (the paper's "12 constant fp arguments").
``fs_branch``
    the paper's Figure 1 pattern, with the selector itself passed as a local
    constant: only the flow-sensitive method (which evaluates branch
    feasibility under entry constants) finds the inner argument and both
    formals.  Drives the POLYNOMIAL < FS gap of Table 5.
``pt_imm``
    pass-through of an immediate — the only way the FI argument count
    exceeds IMM (the paper's WAVE5 +2 effect).
``filler_drivers``
    loop-carried non-constant values fanned into three call sites of a
    three-argument worker — arguments and formals no method should find.
``deep_chains``
    a five-stage call chain fed loop-varying values — deep, constant-free
    call paths matching real programs' call-graph depth.
``array_kernels``
    constant array values initialized and passed as arguments — the paper's
    acknowledged blind spot ("at least one benchmark would benefit from the
    propagation of constant array values"); no method finds them.
``plain_procs``
    a chain of zero-argument procedures (the SWM256 shape).
``fi_float_globals``
    block-data float constants never modified — FI program constants
    (the paper notes *all* its FI globals are floats).  Readers are fanned
    out; even-indexed instances are also referenced in ``main`` (visible),
    odd ones are not.
``killed_globals``
    block-data constants that are assigned somewhere — FI candidates that
    propagate nowhere (the WAVE5 74-candidates/0-constants shape).
``fs_int_globals`` / ``fs_float_globals``
    a global assigned a constant and then referenced in the same procedure's
    call sites — invisible to FI, found by FS, visible in the caller.
``invisible_globals``
    a constant global passed *through* a middle procedure that never
    mentions it — counted by the FS call-site metric but not by VIS.
``rec_self_const`` / ``rec_self_vary`` / ``rec_mutual`` / ``rec_blowup``
    the recursion-heavy patterns of :data:`RECURSION_SUITE` (not used by
    the paper-table profiles): self-recursion carrying a local constant
    through the cycle, self-recursion on a descending counter, a mutually
    recursive pair threading a constant, and an abstractly unbounded
    ascent that only the value-contexts blowup guard terminates.  They
    measure the ``context_mode`` precision/cost tradeoff — the one-pass
    traversal degrades every cycle to the FI fallback (ICP006), while
    value-context tabulation resolves them.

Counts per benchmark are chosen so each program reproduces the *shape* of
its paper row (who wins, roughly by what factor) at roughly 1/8 scale; the
paper's absolute numbers are attached to every profile so harnesses print
them side by side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.lang import ast
from repro.lang.parser import parse_program
from repro.obs import Observability
from repro.sched.cache import CacheStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports bench users)
    from repro.core.config import ICPConfig
    from repro.core.driver import PipelineResult


@dataclass(frozen=True)
class PaperTable1Row:
    """A Table 1/3 row of the paper (call-site constant candidates)."""

    args: int
    imm: int
    fi: int
    fs: int
    g_fi: int
    g_fs: int
    g_vis: int


@dataclass(frozen=True)
class PaperTable2Row:
    """A Table 2/4 row of the paper (propagated constants at entry)."""

    fp: int
    fi: int
    fs: int
    procs: int
    g_fi: int
    g_fs: int


@dataclass(frozen=True)
class BenchmarkProfile:
    """Pattern counts plus the paper's reported numbers for one benchmark."""

    name: str
    literal_pairs: int = 0
    varying_sites: int = 0
    local_const: int = 0
    lcv_int: int = 0
    lcv_float: int = 0
    fs_branch: int = 0
    pt_imm: int = 0
    filler_drivers: int = 0
    deep_chains: int = 0
    array_kernels: int = 0
    plain_procs: int = 0
    fi_float_globals: int = 0
    global_fanout: int = 1
    killed_globals: int = 0
    fs_int_globals: int = 0
    fs_float_globals: int = 0
    invisible_globals: int = 0
    rec_self_const: int = 0
    rec_self_vary: int = 0
    rec_mutual: int = 0
    rec_blowup: int = 0
    paper_t1: Optional[PaperTable1Row] = None
    paper_t2: Optional[PaperTable2Row] = None
    paper_t3: Optional[PaperTable1Row] = None
    paper_t4: Optional[PaperTable2Row] = None


class _SuiteEmitter:
    """Assembles MiniF source from pattern instances."""

    def __init__(self) -> None:
        self.globals: List[str] = []
        self.inits: List[str] = []
        self.procs: List[str] = []
        self.main_stmts: List[str] = []

    def emit(self) -> str:
        parts: List[str] = []
        if self.globals:
            parts.append("global " + ", ".join(self.globals) + ";")
        if self.inits:
            parts.append("init {")
            parts.extend(f"    {line}" for line in self.inits)
            parts.append("}")
        parts.append("proc main() {")
        parts.extend(f"    {line}" for line in self.main_stmts)
        parts.append("}")
        parts.extend(self.procs)
        return "\n".join(parts) + "\n"

    # -- argument/formal patterns -----------------------------------------

    def literal_pair(self, k: int) -> None:
        # ARG+2 IMM+2 FI+2 FS+2 | FP+2, constant under every method.
        self.procs.append("proc li%d(a, b) { t = a + b; print(t); }" % k)
        self.main_stmts.append(f"call li{k}({k % 9 + 3}, 7);")

    def varying_site(self, k: int) -> None:
        # ARG+2 IMM+2 FI+2 FS+2 | FP+1, never constant.
        self.procs.append("proc va%d(a) { print(a); }" % k)
        self.main_stmts.append(f"call va{k}({k % 9});")
        self.main_stmts.append(f"call va{k}({k % 9 + 1});")

    def local_const(self, k: int) -> None:
        # ARG+1 FS+1 | FP+1 FS-and-jump-function constant, FI blind.
        # Two uses in the callee widen the Table 5 FI < POLYNOMIAL gap.
        self.procs.append(
            f"proc lc{k}() {{ w = {k % 9 + 1}; call lcs{k}(w); }}\n"
            f"proc lcs{k}(c) {{ print(c + c); }}"
        )
        self.main_stmts.append(f"call lc{k}();")

    def local_const_varying(self, k: int, float_value: bool) -> None:
        # ARG+4 IMM+3 FI+3 FS+4 | FP+2, no formal constants anywhere.
        value = f"{k % 4}.5" if float_value else str(k % 9 + 5)
        other = str(k % 9 + 6)  # int literal: IMM must not shift with floats off
        tag = "lvf" if float_value else "lvi"
        self.procs.append(
            f"proc {tag}{k}() {{ w = {value}; call {tag}s{k}(w, 1); }}\n"
            f"proc {tag}s{k}(c, d) {{ print(c + d); }}"
        )
        self.main_stmts.append(f"call {tag}{k}();")
        self.main_stmts.append(f"call {tag}s{k}({other}, 2);")

    def fs_branch(self, k: int) -> None:
        # Figure 1 in miniature with a local-constant selector:
        # ARG+2 FS+2 | FP+2 constant only under the flow-sensitive method.
        # Three uses of the inner formal widen the Table 5 POLY < FS gap.
        self.procs.append(
            f"proc fb{k}(sel) {{\n"
            f"    if (sel != 0) {{ y = {k % 5 + 1}; }} else {{ y = {k % 7 + 2}; }}\n"
            f"    call fbs{k}(y);\n"
            f"}}\n"
            f"proc fbs{k}(w) {{ t = w + w * w; print(t + w); }}"
        )
        self.main_stmts.append(f"z{k} = 0;")
        self.main_stmts.append(f"call fb{k}(z{k});")

    def pt_imm(self, k: int) -> None:
        # ARG+2 IMM+1 FI+2 FS+2 | FP+2 constant under FI and FS
        # (the only pattern where FI args exceed IMM — the WAVE5 effect).
        self.procs.append(
            f"proc pt{k}(a) {{ call pts{k}(a); }}\n"
            f"proc pts{k}(b) {{ print(b); }}"
        )
        self.main_stmts.append(f"call pt{k}({k % 11 + 1});")

    def filler_driver(self, k: int) -> None:
        # ARG+9 over three call sites | FP+3, nothing constant.
        self.procs.append(
            f"proc fd{k}() {{\n"
            f"    i = 3;\n"
            f"    s = 0;\n"
            f"    while (i > 0) {{\n"
            f"        s = s + i;\n"
            f"        call fw{k}(s, i * 2, s + i);\n"
            f"        call fw{k}(i, s - 1, s * i);\n"
            f"        i = i - 1;\n"
            f"    }}\n"
            f"    call fw{k}(s, s + 2, s - 2);\n"
            f"}}\n"
            f"proc fw{k}(h1, h2, h3) {{ t = h1 + h2 * h3; print(t); }}"
        )
        self.main_stmts.append(f"call fd{k}();")

    def deep_chain(self, k: int, depth: int = 5) -> None:
        # A call chain of `depth` one-argument stages fed loop-varying
        # values: ARG+depth / FP+depth, nothing constant, PCG depth+depth.
        self.procs.append(
            f"proc dcd{k}() {{\n"
            f"    i = 2;\n"
            f"    while (i > 0) {{ call dc{k}_0(i * 3); i = i - 1; }}\n"
            f"}}"
        )
        for level in range(depth):
            if level + 1 < depth:
                body = f"call dc{k}_{level + 1}(h + {level + 1});"
            else:
                body = "print(h);"
            self.procs.append(f"proc dc{k}_{level}(h) {{ {body} }}")
        self.main_stmts.append(f"call dcd{k}();")

    def array_kernel(self, k: int) -> None:
        # The paper's acknowledged blind spot: constant array values are
        # initialized and passed, and no method propagates them.
        # ARG+2 / FP+2, nothing constant anywhere.
        self.procs.append(
            f"proc ak{k}() {{\n"
            f"    t[0] = {k % 7 + 1};\n"
            f"    t[1] = {k % 5 + 2};\n"
            f"    call aks{k}(t[0], t[1]);\n"
            f"}}\n"
            f"proc aks{k}(v, n) {{ print(v * n); }}"
        )
        self.main_stmts.append(f"call ak{k}();")

    def plain_proc_chain(self, count: int) -> None:
        for k in range(count):
            body = f"call pp{k + 1}();" if k + 1 < count else "print(1);"
            self.procs.append(f"proc pp{k}() {{ {body} }}")
        if count:
            self.main_stmts.append("call pp0();")

    # -- global patterns ----------------------------------------------------

    def fi_float_global(self, k: int, fanout: int) -> None:
        # Block-data float constant, never modified: an FI program constant
        # referenced by `fanout` readers.  Even instances are also read in
        # main, making their call sites *visible*.
        name = f"cf{k}"
        self.globals.append(name)
        self.inits.append(f"{name} = {k}.5;")
        if k % 2 == 0:
            self.main_stmts.append(f"print({name});")
        for j in range(max(1, fanout)):
            self.procs.append(f"proc cfr{k}_{j}() {{ print({name}); }}")
            self.main_stmts.append(f"call cfr{k}_{j}();")

    def killed_global(self, k: int) -> None:
        # Block-data candidate destroyed by a later assignment.
        name = f"kg{k}"
        self.globals.append(name)
        self.inits.append(f"{name} = {k}.25;")
        self.procs.append(
            f"proc kgw{k}() {{ {name} = {name} + 1.0; print({name}); }}"
        )
        self.main_stmts.append(f"call kgw{k}();")

    def fs_global(self, k: int, value: str, tag: str) -> None:
        # Assigned a constant, then referenced at two call sites in the same
        # procedure: FS-only, and visible (the setter reads it too).
        name = f"s{tag}{k}"
        self.globals.append(name)
        self.procs.append(
            f"proc {tag}set{k}() {{\n"
            f"    {name} = {value};\n"
            f"    print({name});\n"
            f"    call {tag}use{k}();\n"
            f"    call {tag}use{k}();\n"
            f"}}\n"
            f"proc {tag}use{k}() {{ print({name}); }}"
        )
        self.main_stmts.append(f"call {tag}set{k}();")

    def invisible_global(self, k: int) -> None:
        # Constant global threaded through a middle procedure that never
        # mentions it: FS counts the sites, VIS does not.
        name = f"ig{k}"
        self.globals.append(name)
        self.procs.append(
            f"proc igm{k}() {{ call igl{k}(); }}\n"
            f"proc igl{k}() {{ print({name}); }}"
        )
        self.main_stmts.append(f"{name} = {k % 13 + 1};")
        self.main_stmts.append(f"call igm{k}();")

    # -- recursion patterns (RECURSION_SUITE) -------------------------------

    def rec_self_const(self, k: int) -> None:
        # Self-recursion threading a local constant through the cycle.
        # The FI fallback sees a local argument (BOTTOM), so the one-pass
        # traversal loses formal `c` on the back edge; value-context
        # tabulation keeps Const in every context and wins the formal.
        value = k % 9 + 2
        self.procs.append(
            f"proc rsc{k}(n, c) {{\n"
            f"    m = {value};\n"
            f"    if (n > 0) {{ call rsc{k}(n - 1, m); }}\n"
            f"    print(n + c);\n"
            f"}}"
        )
        self.main_stmts.append(f"call rsc{k}({k % 3 + 2}, {value});")

    def rec_self_vary(self, k: int) -> None:
        # Descending-counter self-recursion: no constants to win, but the
        # cycle terminates on the base case and tabulation resolves every
        # call edge (no retained fallback, hence no ICP006).
        self.procs.append(
            f"proc rsv{k}(n) {{\n"
            f"    if (n > 0) {{ call rsv{k}(n - 1); }}\n"
            f"    print(n);\n"
            f"}}"
        )
        self.main_stmts.append(f"call rsv{k}({k % 4 + 2});")

    def rec_mutual(self, k: int) -> None:
        # A mutually recursive pair threading a constant held in a caller
        # local: both entries degrade to BOTTOM under the one-pass
        # traversal (the cycle's fallback poisons the forward edge too);
        # tabulation keeps Const on both formals.
        value = k % 7 + 3
        self.procs.append(
            f"proc rma{k}(n, c) {{\n"
            f"    if (n > 0) {{ call rmb{k}(n - 1, c); }}\n"
            f"    print(c);\n"
            f"}}\n"
            f"proc rmb{k}(n, c) {{\n"
            f"    if (n > 0) {{ call rma{k}(n - 1, c); }}\n"
            f"    print(c);\n"
            f"}}"
        )
        self.main_stmts.append(f"w{k} = {value};")
        self.main_stmts.append(f"call rma{k}({k % 3 + 2}, w{k});")

    def rec_blowup(self, k: int) -> None:
        # Abstractly unbounded ascent: the bound is a non-constant global,
        # so the recursive branch never goes dead and each call requests a
        # fresh context — only the ``context_max_per_proc`` guard stops
        # the tabulation, degrading the site to the FI fallback (the one
        # recursion shape where ICP006 survives under value contexts).
        name = f"rb{k}"
        self.globals.append(name)
        self.inits.append(f"{name} = {k % 5 + 3};")
        self.procs.append(
            f"proc rbu{k}(n) {{\n"
            f"    if (n < {name}) {{ call rbu{k}(n + 1); }}\n"
            f"    print(n);\n"
            f"}}"
        )
        self.main_stmts.append(f"i{k} = 2;")
        self.main_stmts.append(
            f"while (i{k} > 0) {{ {name} = {name} + i{k}; i{k} = i{k} - 1; }}"
        )
        self.main_stmts.append(f"call rbu{k}(0);")


def build_benchmark(profile: BenchmarkProfile, scale: int = 1) -> ast.Program:
    """Assemble and parse the synthetic program for ``profile``.

    ``scale`` multiplies every pattern count: the metric *ratios* of a
    profile are scale-invariant by construction, which
    ``benchmarks/test_scale_robustness.py`` verifies.
    """
    return parse_program(build_benchmark_source(profile, scale))


def build_benchmark_source(profile: BenchmarkProfile, scale: int = 1) -> str:
    """Assemble the MiniF source text for ``profile`` (see build_benchmark)."""
    emitter = _SuiteEmitter()
    for k in range(scale * profile.literal_pairs):
        emitter.literal_pair(k)
    for k in range(scale * profile.varying_sites):
        emitter.varying_site(k)
    for k in range(scale * profile.local_const):
        emitter.local_const(k)
    for k in range(scale * profile.lcv_int):
        emitter.local_const_varying(k, float_value=False)
    for k in range(scale * profile.lcv_float):
        emitter.local_const_varying(k + 1000, float_value=True)
    for k in range(scale * profile.fs_branch):
        emitter.fs_branch(k)
    for k in range(scale * profile.pt_imm):
        emitter.pt_imm(k)
    for k in range(scale * profile.filler_drivers):
        emitter.filler_driver(k)
    for k in range(scale * profile.deep_chains):
        emitter.deep_chain(k)
    for k in range(scale * profile.array_kernels):
        emitter.array_kernel(k)
    emitter.plain_proc_chain(scale * profile.plain_procs)
    for k in range(scale * profile.fi_float_globals):
        emitter.fi_float_global(k, profile.global_fanout)
    for k in range(scale * profile.killed_globals):
        emitter.killed_global(k)
    for k in range(scale * profile.fs_int_globals):
        emitter.fs_global(k, str(k % 9 + 2), "gi")
    for k in range(scale * profile.fs_float_globals):
        emitter.fs_global(k, f"{k % 4}.75", "gf")
    for k in range(scale * profile.invisible_globals):
        emitter.invisible_global(k)
    for k in range(scale * profile.rec_self_const):
        emitter.rec_self_const(k)
    for k in range(scale * profile.rec_self_vary):
        emitter.rec_self_vary(k)
    for k in range(scale * profile.rec_mutual):
        emitter.rec_mutual(k)
    for k in range(scale * profile.rec_blowup):
        emitter.rec_blowup(k)
    return emitter.emit()


# ----------------------------------------------------------------------
# Batched suite analysis (shared scheduler pool + summary cache).
# ----------------------------------------------------------------------


@dataclass
class SuiteRun:
    """Outcome of one batched :func:`analyze_suite` invocation."""

    #: Per-benchmark pipeline results, in request order.
    results: "Dict[str, PipelineResult]"
    #: Cumulative summary-cache counters across the whole batch
    #: (``None`` when the configuration did not enable the cache).
    cache_stats: Optional[CacheStats] = None
    #: End-to-end wall seconds per benchmark (build + full pipeline).
    wall_seconds: Dict[str, float] = field(default_factory=dict)
    #: Per-benchmark diagnostic finding counts by rule ID (``None`` unless
    #: the batch ran with ``diagnostics=True``).
    findings: Optional[Dict[str, Dict[str, int]]] = None

    def total_findings(self, name: str) -> int:
        """Kept findings for one benchmark (0 when diagnostics were off)."""
        if self.findings is None:
            return 0
        return sum(self.findings.get(name, {}).values())

    @property
    def tasks_run(self) -> int:
        return sum(
            r.sched.tasks_run for r in self.results.values() if r.sched is not None
        )

    @property
    def tasks_cached(self) -> int:
        return sum(
            r.sched.tasks_cached
            for r in self.results.values()
            if r.sched is not None
        )


def analyze_suite(
    names: Optional[Iterable[str]] = None,
    config: "Optional[ICPConfig]" = None,
    scale: int = 1,
    obs: Optional[Observability] = None,
    diagnostics: bool = False,
) -> SuiteRun:
    """Analyze suite benchmarks through one shared pipeline.

    All requested benchmarks run through a single
    :class:`~repro.core.driver.CompilationPipeline`: with ``config.workers``
    above one, each program's wavefront levels dispatch to the worker pool,
    and with ``config.cache`` set, the procedure-summary cache persists
    across the whole batch — re-analyzing the suite on the same pipeline is
    then almost entirely cache hits.

    ``config`` may also be a plain mapping; it goes through the validated
    :meth:`~repro.core.config.ICPConfig.from_dict` path.

    With ``diagnostics=True``, the diagnostics engine runs over every
    result (honoring the config's ``diag_*`` keys) and the returned
    :attr:`SuiteRun.findings` maps each benchmark to its per-rule finding
    counts — the suite's lint-health column.
    """
    from collections.abc import Mapping

    from repro.core.config import ICPConfig
    from repro.core.driver import CompilationPipeline

    if isinstance(config, Mapping):
        config = ICPConfig.from_dict(config)

    # Dedupe while keeping order: results are keyed by name, so a repeated
    # request would silently overwrite (and skew the batch totals).
    requested = list(dict.fromkeys(names)) if names is not None else list(SUITE)
    profiles = {**SUITE, **RECURSION_SUITE}
    unknown = sorted(set(requested) - set(profiles))
    if unknown:
        raise KeyError(f"unknown benchmarks: {unknown}; known: {sorted(profiles)}")

    pipeline = CompilationPipeline(config, obs=obs)
    tracer = obs.tracer if obs is not None else None
    results: "Dict[str, PipelineResult]" = {}
    wall_seconds: Dict[str, float] = {}
    findings: Optional[Dict[str, Dict[str, int]]] = {} if diagnostics else None
    if diagnostics:
        from repro.diag import DiagOptions, run_diagnostics

        diag_options = DiagOptions.from_config(
            config if config is not None else ICPConfig()
        )
    for name in requested:
        started = time.perf_counter()
        if tracer is not None and tracer.enabled:
            with tracer.span("benchmark", cat="bench", benchmark=name, scale=scale):
                results[name] = pipeline.run(build_benchmark(profiles[name], scale))
        else:
            results[name] = pipeline.run(build_benchmark(profiles[name], scale))
        if findings is not None:
            diag = run_diagnostics(results[name], diag_options, obs=obs)
            findings[name] = diag.counts
        wall_seconds[name] = time.perf_counter() - started
    cache_stats = (
        pipeline.cache.stats.snapshot() if pipeline.cache is not None else None
    )
    return SuiteRun(
        results=results,
        cache_stats=cache_stats,
        wall_seconds=wall_seconds,
        findings=findings,
    )


def compare_engine_phases(
    names: Optional[Iterable[str]] = None,
    config: "Optional[ICPConfig]" = None,
    scale: int = 1,
    repeats: int = 5,
) -> Dict[str, object]:
    """Per-phase (ssa/scc/solve) engine timing, ``graph`` vs ``flat``.

    Runs the requested benchmarks through one warm
    :class:`~repro.core.driver.CompilationPipeline` per backend, ``repeats``
    times each, with the process-wide :data:`~repro.analysis.phases.PHASES`
    clock enabled around the timed loop.  The run is forced serial with the
    summary cache off: per-phase attribution is only meaningful when the
    engine actually runs on one thread, and a cache hit would skip the
    engine entirely.  Repeats on one pipeline are the sessions/serve
    workload shape — the flat backend's skeleton cache amortizes
    CFG/SSA/lowering across reruns, which is exactly the win being
    measured; the graph oracle rebuilds from scratch every time.

    The comparison is gated the same way every perf surface here is: the
    two backends' rendered analysis reports must match byte-for-byte
    (``reports_identical`` in the returned section; any offender is named
    in ``mismatched``).
    """
    from collections.abc import Mapping

    from repro.analysis.phases import PHASES
    from repro.core.config import ICPConfig
    from repro.core.driver import CompilationPipeline
    from repro.core.report import analysis_report

    if isinstance(config, Mapping):
        config = ICPConfig.from_dict(config)
    base = (config or ICPConfig()).to_dict()
    base.update(workers=1, cache=False, store_dir=None, store_remote_url=None)

    requested = list(dict.fromkeys(names)) if names is not None else list(SUITE)
    profiles = {**SUITE, **RECURSION_SUITE}
    unknown = sorted(set(requested) - set(profiles))
    if unknown:
        raise KeyError(f"unknown benchmarks: {unknown}; known: {sorted(profiles)}")
    programs = {
        name: build_benchmark(profiles[name], scale) for name in requested
    }

    sections: Dict[str, Dict[str, float]] = {}
    reports: Dict[str, Dict[str, str]] = {}
    for backend in ("graph", "flat"):
        pipeline = CompilationPipeline(
            ICPConfig.from_dict({**base, "engine_backend": backend})
        )
        PHASES.reset()
        PHASES.enabled = True
        try:
            started = time.perf_counter()
            for repeat in range(repeats):
                for name in requested:
                    result = pipeline.run(programs[name])
                    if repeat == 0:
                        reports.setdefault(backend, {})[name] = analysis_report(
                            result
                        )
            wall = time.perf_counter() - started
        finally:
            PHASES.enabled = False
        section = PHASES.snapshot()
        section["wall_seconds"] = wall
        sections[backend] = section

    mismatched = [
        name
        for name in requested
        if reports["graph"][name] != reports["flat"][name]
    ]

    def _ratio(numer: float, denom: float) -> float:
        return numer / denom if denom > 0.0 else 0.0

    graph, flat = sections["graph"], sections["flat"]
    speedup = {
        phase: _ratio(graph[phase], flat[phase])
        for phase in ("ssa", "scc", "solve")
    }
    speedup["combined_ssa_scc"] = _ratio(
        graph["ssa"] + graph["scc"], flat["ssa"] + flat["scc"]
    )
    speedup["wall"] = _ratio(graph["wall_seconds"], flat["wall_seconds"])
    return {
        "schema": "repro-icp/bench-phases/v1",
        "scale": scale,
        "repeats": repeats,
        "names": requested,
        "graph": graph,
        "flat": flat,
        "speedup": speedup,
        "reports_identical": not mismatched,
        "mismatched": mismatched,
    }


#: The twelve benchmarks of the paper's Tables 1 and 2, at roughly 1/8 scale.
SUITE: Dict[str, BenchmarkProfile] = {}


def _add(profile: BenchmarkProfile) -> None:
    SUITE[profile.name] = profile


_add(
    BenchmarkProfile(
        name="013.spice2g6",
        literal_pairs=2,
        varying_sites=12,
        lcv_int=10,
        lcv_float=1,
        filler_drivers=30,
        deep_chains=5,
        fs_int_globals=5,
        fs_float_globals=5,
        invisible_globals=8,
        paper_t1=PaperTable1Row(2983, 384, 384, 430, 0, 533, 302),
        paper_t2=PaperTable2Row(307, 4, 4, 120, 0, 45),
    )
)
_add(
    BenchmarkProfile(
        name="015.doduc",
        literal_pairs=1,
        varying_sites=5,
        lcv_float=4,
        filler_drivers=18,
        deep_chains=3,
        fs_float_globals=1,
        paper_t1=PaperTable1Row(483, 39, 39, 43, 0, 1, 1),
        paper_t2=PaperTable2Row(133, 2, 2, 41, 0, 1),
        paper_t3=PaperTable1Row(483, 39, 39, 39, 0, 0, 0),
        paper_t4=PaperTable2Row(133, 2, 2, 41, 0, 0),
    )
)
_add(
    BenchmarkProfile(
        name="030.matrix300",
        literal_pairs=1,
        varying_sites=2,
        local_const=1,
        fs_branch=7,
        filler_drivers=2,
        array_kernels=2,
        paper_t1=PaperTable1Row(178, 25, 25, 110, 0, 0, 0),
        paper_t2=PaperTable2Row(32, 2, 15, 5, 0, 0),
        paper_t3=PaperTable1Row(178, 25, 25, 110, 0, 0, 0),
        paper_t4=PaperTable2Row(32, 2, 15, 5, 0, 0),
    )
)
_add(
    BenchmarkProfile(
        name="034.mdljdp2",
        literal_pairs=1,
        varying_sites=2,
        filler_drivers=7,
        fi_float_globals=4,
        global_fanout=3,
        fs_int_globals=1,
        paper_t1=PaperTable1Row(195, 11, 11, 11, 16, 69, 38),
        paper_t2=PaperTable2Row(40, 3, 3, 36, 38, 40),
    )
)
_add(
    BenchmarkProfile(
        name="039.wave5",
        literal_pairs=1,
        varying_sites=4,
        local_const=1,
        lcv_int=2,
        lcv_float=1,
        fs_branch=1,
        pt_imm=2,
        filler_drivers=28,
        deep_chains=4,
        array_kernels=1,
        killed_globals=10,
        fs_int_globals=4,
        fs_float_globals=4,
        invisible_globals=2,
        paper_t1=PaperTable1Row(676, 30, 32, 49, 74, 249, 231),
        paper_t2=PaperTable2Row(258, 5, 9, 79, 0, 61),
    )
)
_add(
    BenchmarkProfile(
        name="048.ora",
        plain_procs=2,
        fi_float_globals=3,
        global_fanout=2,
        fs_int_globals=1,
        paper_t1=PaperTable1Row(0, 0, 0, 0, 0, 0, 0),
        paper_t2=PaperTable2Row(0, 0, 0, 3, 18, 23),
    )
)
_add(
    BenchmarkProfile(
        name="077.mdljsp2",
        literal_pairs=1,
        varying_sites=2,
        filler_drivers=7,
        paper_t1=PaperTable1Row(195, 11, 11, 11, 0, 0, 0),
        paper_t2=PaperTable2Row(40, 3, 3, 35, 0, 0),
    )
)
_add(
    BenchmarkProfile(
        name="078.swm256",
        plain_procs=8,
        paper_t1=PaperTable1Row(0, 0, 0, 0, 0, 0, 0),
        paper_t2=PaperTable2Row(0, 0, 0, 8, 0, 0),
    )
)
_add(
    BenchmarkProfile(
        name="089.su2cor",
        literal_pairs=2,
        varying_sites=10,
        filler_drivers=14,
        deep_chains=3,
        array_kernels=2,
        paper_t1=PaperTable1Row(644, 110, 110, 110, 0, 0, 0),
        paper_t2=PaperTable2Row(57, 4, 4, 25, 0, 0),
    )
)
_add(
    BenchmarkProfile(
        name="090.hydro2d",
        literal_pairs=3,
        varying_sites=3,
        filler_drivers=5,
        paper_t1=PaperTable1Row(197, 28, 28, 28, 0, 1, 1),
        paper_t2=PaperTable2Row(42, 7, 7, 40, 0, 0),
    )
)
_add(
    BenchmarkProfile(
        name="093.nasa7",
        literal_pairs=7,
        varying_sites=2,
        local_const=1,
        lcv_int=1,
        fs_branch=3,
        filler_drivers=3,
        paper_t1=PaperTable1Row(104, 33, 33, 45, 0, 3, 3),
        paper_t2=PaperTable2Row(64, 15, 22, 23, 0, 0),
        paper_t3=PaperTable1Row(97, 33, 33, 42, 0, 0, 0),
        paper_t4=PaperTable2Row(57, 15, 19, 17, 0, 0),
    )
)
_add(
    BenchmarkProfile(
        name="094.fpppp",
        literal_pairs=2,
        varying_sites=2,
        local_const=1,
        fs_branch=1,
        filler_drivers=5,
        fs_int_globals=1,
        fs_float_globals=1,
        invisible_globals=2,
        paper_t1=PaperTable1Row(103, 17, 17, 21, 0, 8, 4),
        paper_t2=PaperTable2Row(70, 4, 7, 13, 0, 2),
        paper_t3=PaperTable1Row(103, 17, 17, 21, 0, 8, 4),
        paper_t4=PaperTable2Row(70, 4, 7, 13, 0, 2),
    )
)

#: The Grove–Torczon comparison subset of Tables 3–5 (first-release SPEC;
#: the paper's 020.NASA7 and 042.FPPPP are earlier versions of the same
#: programs — the analog profiles are reused, a documented substitution).
GT_SUBSET: Tuple[str, ...] = (
    "015.doduc",
    "093.nasa7",
    "030.matrix300",
    "094.fpppp",
)

#: Paper Table 5 (intraprocedural substitutions, no-return configuration).
PAPER_TABLE5: Dict[str, Tuple[int, int, int]] = {
    # name -> (polynomial, FI, FS)
    "015.doduc": (287, 288, 288),
    "093.nasa7": (336, 205, 344),
    "030.matrix300": (138, 14, 250),
    "094.fpppp": (56, 25, 79),
}


# ----------------------------------------------------------------------
# Recursion-heavy profiles (context-mode comparison).
# ----------------------------------------------------------------------

#: Recursion-heavy profiles measuring the ``context_mode`` tradeoff.  Not
#: part of the paper tables (the paper's Fortran suite is recursion-free);
#: :func:`analyze_suite` accepts their names alongside :data:`SUITE`.
RECURSION_SUITE: Dict[str, BenchmarkProfile] = {}


def _add_recursion(profile: BenchmarkProfile) -> None:
    RECURSION_SUITE[profile.name] = profile


_add_recursion(
    BenchmarkProfile(
        name="rec.self",
        rec_self_const=4,
        rec_self_vary=3,
        literal_pairs=2,
    )
)
_add_recursion(
    BenchmarkProfile(
        name="rec.mutual",
        rec_mutual=3,
        rec_self_vary=2,
        varying_sites=2,
    )
)
_add_recursion(
    BenchmarkProfile(
        name="rec.mixed",
        rec_self_const=2,
        rec_mutual=2,
        local_const=2,
    )
)
_add_recursion(
    BenchmarkProfile(
        # The guard-exercise profile: its unbounded ascents degrade to the
        # FI fallback under value contexts, so — unlike the other recursion
        # profiles — it retains ICP006 notes in both modes by design.
        name="rec.blowup",
        rec_blowup=2,
        rec_self_vary=1,
    )
)

#: The recursion profiles that value-context tabulation fully resolves
#: (zero retained fallback edges, hence zero ICP006 notes).
RECURSION_RESOLVED: Tuple[str, ...] = ("rec.self", "rec.mutual", "rec.mixed")


def compare_context_modes(
    names: Optional[Iterable[str]] = None,
    config: "Optional[ICPConfig]" = None,
    scale: int = 1,
) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Run profiles under both ``context_mode`` settings and compare.

    Returns ``{benchmark: {mode: row}}`` where each row reports the
    precision/cost tradeoff of that mode: retained fallback edges (one
    ICP006 note each), constant formals and entry globals found, wall
    seconds, and — under value contexts — the tabulation statistics
    (contexts, rounds, widenings, degraded requests, per-procedure table
    sizes).  Defaults to the :data:`RECURSION_SUITE` profiles.
    """
    from repro.core.config import ICPConfig

    requested = list(names) if names is not None else list(RECURSION_SUITE)
    base = (config or ICPConfig()).to_dict()
    comparison: Dict[str, Dict[str, Dict[str, object]]] = {}
    for mode in ("carini-hind", "value-contexts"):
        mode_config = ICPConfig.from_dict({**base, "context_mode": mode})
        run = analyze_suite(requested, mode_config, scale=scale)
        for name, result in run.results.items():
            row: Dict[str, object] = {
                "wall_seconds": round(run.wall_seconds[name], 6),
                "fallback_edges": len(result.fs.fallback_edges),
                "constant_formals": len(result.fs.constant_formals()),
                "constant_entry_globals": sum(
                    1
                    for value in result.fs.entry_globals.values()
                    if value.is_const
                ),
            }
            if result.fs.contexts is not None:
                row["contexts"] = result.fs.contexts.to_dict()
            comparison.setdefault(name, {})[mode] = row
    return comparison
