"""Regenerates every table of the paper's evaluation section.

Each ``tableN_rows`` function runs the full Figure 2 pipeline over the
synthetic suite and returns measured rows paired with the paper's reported
numbers; ``format_*`` helpers render them side by side.  Because the
workloads are synthetic analogs (see DESIGN.md), absolute values differ from
the paper by construction — the *shape* (which method wins, roughly by what
factor) is what the benchmark assertions check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.transform import transform_program
from repro.bench.suite import (
    GT_SUBSET,
    PAPER_TABLE5,
    SUITE,
    BenchmarkProfile,
    PaperTable1Row,
    PaperTable2Row,
    build_benchmark,
)
from repro.core.config import ICPConfig
from repro.core.driver import PipelineResult, analyze
from repro.core.effects import SummaryEffects
from repro.core.jump_functions import JumpFunctionKind, jump_function_icp
from repro.core.metrics import (
    CallSiteCandidates,
    PropagatedConstants,
    call_site_candidates,
    propagated_constants,
)
from repro.ir.lattice import Const, LatticeValue

_PIPELINE_CACHE: Dict[Tuple[str, bool], PipelineResult] = {}


def pipeline_for(
    profile: BenchmarkProfile, config: Optional[ICPConfig] = None
) -> PipelineResult:
    """Run (and cache) the full pipeline for one benchmark profile."""
    config = config or ICPConfig()
    key = (profile.name, config.propagate_floats)
    cached = _PIPELINE_CACHE.get(key)
    if cached is not None:
        return cached
    program = build_benchmark(profile)
    result = analyze(program, config)
    _PIPELINE_CACHE[key] = result
    return result


def clear_cache() -> None:
    _PIPELINE_CACHE.clear()


# ----------------------------------------------------------------------
# Tables 1 and 3: call-site constant candidates.
# ----------------------------------------------------------------------


@dataclass
class Table1Entry:
    name: str
    measured: CallSiteCandidates
    paper: Optional[PaperTable1Row]


def _candidates_for(
    profile: BenchmarkProfile, config: ICPConfig
) -> CallSiteCandidates:
    result = pipeline_for(profile, config)
    return call_site_candidates(
        profile.name,
        result.program,
        result.symbols,
        result.pcg,
        result.modref,
        result.fi,
        result.fs,
        config,
    )


def table1_rows(config: Optional[ICPConfig] = None) -> List[Table1Entry]:
    """Table 1: call-site candidates across the full suite (floats on)."""
    config = config or ICPConfig(propagate_floats=True)
    return [
        Table1Entry(name, _candidates_for(profile, config), profile.paper_t1)
        for name, profile in SUITE.items()
    ]


def table3_rows(config: Optional[ICPConfig] = None) -> List[Table1Entry]:
    """Table 3: the Grove–Torczon subset, floating-point propagation off."""
    config = config or ICPConfig(propagate_floats=False)
    return [
        Table1Entry(
            name, _candidates_for(SUITE[name], config), SUITE[name].paper_t3
        )
        for name in GT_SUBSET
    ]


# ----------------------------------------------------------------------
# Tables 2 and 4: interprocedurally propagated constants.
# ----------------------------------------------------------------------


@dataclass
class Table2Entry:
    name: str
    measured: PropagatedConstants
    paper: Optional[PaperTable2Row]


def _propagated_for(
    profile: BenchmarkProfile, config: ICPConfig
) -> PropagatedConstants:
    result = pipeline_for(profile, config)
    return propagated_constants(
        profile.name,
        result.program,
        result.symbols,
        result.pcg,
        result.modref,
        result.fi,
        result.fs,
        config,
    )


def table2_rows(config: Optional[ICPConfig] = None) -> List[Table2Entry]:
    """Table 2: propagated constants at procedure entry (floats on)."""
    config = config or ICPConfig(propagate_floats=True)
    return [
        Table2Entry(name, _propagated_for(profile, config), profile.paper_t2)
        for name, profile in SUITE.items()
    ]


def table4_rows(config: Optional[ICPConfig] = None) -> List[Table2Entry]:
    """Table 4: the Grove–Torczon subset, floating-point propagation off."""
    config = config or ICPConfig(propagate_floats=False)
    return [
        Table2Entry(
            name, _propagated_for(SUITE[name], config), SUITE[name].paper_t4
        )
        for name in GT_SUBSET
    ]


# ----------------------------------------------------------------------
# Table 5: intraprocedural substitutions per ICP method.
# ----------------------------------------------------------------------


@dataclass
class Table5Entry:
    name: str
    polynomial: int
    fi: int
    fs: int
    paper: Optional[Tuple[int, int, int]]  # (polynomial, fi, fs)


def _main_init_env(result: PipelineResult, config: ICPConfig) -> Dict[str, LatticeValue]:
    env: Dict[str, LatticeValue] = {}
    for name, value in result.program.initial_globals().items():
        if config.admit_value(value):
            env[name] = Const(value)
    return env


def _substitutions(
    result: PipelineResult,
    entry_envs: Dict[str, Dict[str, LatticeValue]],
    config: ICPConfig,
) -> int:
    """Count constant substitutions under a given interprocedural solution.

    Every method gets the block-data initial values for ``main`` (block data
    is program text, hence intraprocedurally visible there).
    """
    envs = {proc: dict(env) for proc, env in entry_envs.items()}
    entry = result.pcg.entry
    envs.setdefault(entry, {})
    for name, value in _main_init_env(result, config).items():
        envs[entry].setdefault(name, value)
    effects = SummaryEffects(result.modref, result.aliases)
    outcome = transform_program(
        result.program, result.symbols, envs, effects, prune_dead_branches=True
    )
    return outcome.total_substitutions


def table5_rows(config: Optional[ICPConfig] = None) -> List[Table5Entry]:
    """Table 5: substitutions under POLYNOMIAL vs FI vs FS solutions."""
    config = config or ICPConfig(propagate_floats=False)
    rows: List[Table5Entry] = []
    for name in GT_SUBSET:
        profile = SUITE[name]
        result = pipeline_for(profile, config)
        poly = jump_function_icp(
            result.program,
            result.symbols,
            result.pcg,
            JumpFunctionKind.POLYNOMIAL,
            result.modref.callsite_mod,
            config,
            assign_aliases=result.aliases.partners,
        )
        poly_envs = {
            proc: poly.entry_env(proc, result.symbols[proc])
            for proc in result.pcg.nodes
        }
        fi_envs = {
            proc: result.fi.entry_env(proc, result.symbols[proc])
            for proc in result.pcg.nodes
        }
        fs_envs = {
            proc: result.fs.entry_env(proc, result.symbols[proc])
            for proc in result.pcg.nodes
        }
        rows.append(
            Table5Entry(
                name=name,
                polynomial=_substitutions(result, poly_envs, config),
                fi=_substitutions(result, fi_envs, config),
                fs=_substitutions(result, fs_envs, config),
                paper=PAPER_TABLE5.get(name),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Section 4 timing claim.
# ----------------------------------------------------------------------


@dataclass
class TimingRow:
    name: str
    base_seconds: float  # shared analysis phases (parse .. modref, use)
    fi_seconds: float
    fs_seconds: float

    @property
    def analysis_increase(self) -> float:
        """(base+fi+fs) / (base+fi) — the paper reports ~1.5."""
        fi_total = self.base_seconds + self.fi_seconds
        if fi_total == 0:
            return 1.0
        return (fi_total + self.fs_seconds) / fi_total


def timing_rows(config: Optional[ICPConfig] = None) -> List[TimingRow]:
    """Fresh (uncached) pipeline timings per benchmark."""
    config = config or ICPConfig()
    rows: List[TimingRow] = []
    for name, profile in SUITE.items():
        program = build_benchmark(profile)
        result = analyze(program, config)
        timings = result.timings
        base = sum(
            seconds
            for phase, seconds in timings.items()
            if phase not in ("icp_fi", "icp_fs")
        )
        rows.append(
            TimingRow(
                name=name,
                base_seconds=base,
                fi_seconds=timings.get("icp_fi", 0.0),
                fs_seconds=timings.get("icp_fs", 0.0),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Formatting.
# ----------------------------------------------------------------------


def format_table1(rows: List[Table1Entry], title: str) -> str:
    header = (
        f"{title}\n"
        f"{'program':<16} {'ARG':>5} {'IMM':>5} {'FI':>5} {'FS':>5} "
        f"{'gFI':>4} {'gFS':>4} {'gVIS':>5}   paper(ARG IMM FI FS | gFI gFS gVIS)"
    )
    lines = [header]
    for row in rows:
        m = row.measured
        paper = row.paper
        paper_text = (
            f"{paper.args:>5} {paper.imm:>4} {paper.fi:>4} {paper.fs:>4} | "
            f"{paper.g_fi:>3} {paper.g_fs:>3} {paper.g_vis:>4}"
            if paper
            else "-"
        )
        lines.append(
            f"{row.name:<16} {m.total_args:>5} {m.imm_args:>5} {m.fi_args:>5} "
            f"{m.fs_args:>5} {m.fi_global_candidates:>4} "
            f"{m.fs_globals_at_sites:>4} {m.vis_globals_at_sites:>5}   {paper_text}"
        )
    totals = _totals1(rows)
    lines.append(
        f"{'TOTAL':<16} {totals[0]:>5} {totals[1]:>5} {totals[2]:>5} "
        f"{totals[3]:>5} {totals[4]:>4} {totals[5]:>4} {totals[6]:>5}"
    )
    return "\n".join(lines)


def _totals1(rows: List[Table1Entry]) -> Tuple[int, ...]:
    return (
        sum(r.measured.total_args for r in rows),
        sum(r.measured.imm_args for r in rows),
        sum(r.measured.fi_args for r in rows),
        sum(r.measured.fs_args for r in rows),
        sum(r.measured.fi_global_candidates for r in rows),
        sum(r.measured.fs_globals_at_sites for r in rows),
        sum(r.measured.vis_globals_at_sites for r in rows),
    )


def format_table2(rows: List[Table2Entry], title: str) -> str:
    header = (
        f"{title}\n"
        f"{'program':<16} {'FP':>4} {'FI':>4} {'FS':>4} {'procs':>6} "
        f"{'gFI':>4} {'gFS':>4}   paper(FP FI FS procs | gFI gFS)"
    )
    lines = [header]
    for row in rows:
        m = row.measured
        paper = row.paper
        paper_text = (
            f"{paper.fp:>4} {paper.fi:>3} {paper.fs:>3} {paper.procs:>4} | "
            f"{paper.g_fi:>3} {paper.g_fs:>3}"
            if paper
            else "-"
        )
        lines.append(
            f"{row.name:<16} {m.total_formals:>4} {m.fi_formals:>4} "
            f"{m.fs_formals:>4} {m.num_procs:>6} {m.fi_globals:>4} "
            f"{m.fs_globals:>4}   {paper_text}"
        )
    lines.append(
        f"{'TOTAL':<16} {sum(r.measured.total_formals for r in rows):>4} "
        f"{sum(r.measured.fi_formals for r in rows):>4} "
        f"{sum(r.measured.fs_formals for r in rows):>4} "
        f"{sum(r.measured.num_procs for r in rows):>6} "
        f"{sum(r.measured.fi_globals for r in rows):>4} "
        f"{sum(r.measured.fs_globals for r in rows):>4}"
    )
    return "\n".join(lines)


def format_table5(rows: List[Table5Entry]) -> str:
    lines = [
        "Table 5: intraprocedural substitutions",
        f"{'program':<16} {'POLY':>6} {'FI':>6} {'FS':>6}   paper(POLY FI FS)",
    ]
    for row in rows:
        paper_text = (
            f"{row.paper[0]:>5} {row.paper[1]:>4} {row.paper[2]:>4}"
            if row.paper
            else "-"
        )
        lines.append(
            f"{row.name:<16} {row.polynomial:>6} {row.fi:>6} {row.fs:>6}   "
            f"{paper_text}"
        )
    lines.append(
        f"{'TOTAL':<16} {sum(r.polynomial for r in rows):>6} "
        f"{sum(r.fi for r in rows):>6} {sum(r.fs for r in rows):>6}   "
        f"paper: 817 532 961"
    )
    return "\n".join(lines)
