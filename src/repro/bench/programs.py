"""Hand-written MiniF programs reconstructing the paper's examples.

:func:`figure1_program` is the paper's Figure 1, rebuilt so that each method
finds exactly the formals the paper's table lists:

==================  =======================
method              constant formals
==================  =======================
flow-sensitive      f1, f2, f3, f4, f5
flow-insensitive    f1, f3, f4
literal             f1, f3
intra               f1, f3, f5
pass-through        f1, f3, f4, f5
polynomial          f1, f3, f4, f5
==================  =======================

The key line is the branch on ``f1``: only an analysis that knows ``f1 = 0``
at ``sub1``'s entry can discard the ``y = 1`` arm and prove ``y`` (hence
``f2``) constant at the call to ``sub2``.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.parser import parse_program

FIGURE1_SOURCE = """\
# Paper Figure 1 (Carini & Hind, PLDI 1995), reconstructed.
proc main() {
    call sub1(0);
}

proc sub1(f1) {
    x = 1;
    if (f1 != 0) {
        y = 1;
    } else {
        y = 0;
    }
    call sub2(y, 4, f1, x);
}

proc sub2(f2, f3, f4, f5) {
    t = f2 + f3 + f4 + f5;
    print(t);
}
"""


def figure1_source() -> str:
    """MiniF source of the paper's Figure 1 example."""
    return FIGURE1_SOURCE


def figure1_program() -> ast.Program:
    """Parsed AST of the paper's Figure 1 example."""
    return parse_program(FIGURE1_SOURCE)


RECURSION_SOURCE = """\
# Self-recursion: the PCG has one back edge, so the FS traversal uses the
# FI solution for the recursive call.  `step` stays constant through the
# recursion (the FI pass-through machinery proves it); `n` varies.
proc main() {
    call walk(8, 2);
    print(0);
}

proc walk(n, step) {
    if (n > 0) {
        call walk(n - step, step);
    }
}
"""


def recursion_program() -> ast.Program:
    """A self-recursive program (one PCG back edge)."""
    return parse_program(RECURSION_SOURCE)


MUTUAL_RECURSION_SOURCE = """\
# Mutual recursion: even/odd descent.  `base` is passed through the cycle
# unchanged; the FI fallback keeps it constant, while the counters vary.
proc main() {
    call even(6, 5);
}

proc even(n, base) {
    if (n == 0) {
        print(base);
    } else {
        call odd(n - 1, base);
    }
}

proc odd(n, base) {
    if (n == 0) {
        print(base + 1);
    } else {
        call even(n - 1, base);
    }
}
"""


def mutual_recursion_program() -> ast.Program:
    """A mutually recursive program (a two-procedure PCG cycle)."""
    return parse_program(MUTUAL_RECURSION_SOURCE)


GLOBALS_SOURCE = """\
# Global constant propagation: `gain` is block-data initialized and never
# modified (an FI program constant, propagated everywhere); `mode` is
# block-data initialized but reassigned, so its FI candidacy is killed while
# the FS method still sees mode = 3 and bias = 4 at the kernel call sites
# (the assignments dominate the calls within the same procedure).
global gain, mode, bias;

init {
    gain = 2.5;
    mode = 1;
}

proc main() {
    call setup();
}

proc setup() {
    mode = 3;
    bias = 4;
    call kernel(10);
    call kernel(10);
}

proc kernel(n) {
    t = gain;
    u = mode + bias + n;
    print(t);
    print(u);
}
"""


def globals_program() -> ast.Program:
    """Exercises block-data constants, killed candidates, and FS globals."""
    return parse_program(GLOBALS_SOURCE)
