"""``repro-icp loadgen`` — concurrent-client load generation for serve.

The serving benchmark the ROADMAP's sharding work gates on: drive a
single-process or sharded daemon with realistic mixed traffic and measure
what a client actually sees — p50/p99 latency per operation class and the
saturation throughput of the whole deployment.

The workload models an analysis service under fleet pressure:

- a **working set** of ``loadgen_programs`` generated programs, each with
  a deterministic *edit script* (single-procedure literal mutations, the
  same mutation family the incremental-session suites replay);
- ``loadgen_clients`` threads keeping that many requests permanently
  outstanding (saturation: offered load always exceeds one box's service
  rate), each issuing a seeded mix of analyze / edit / report /
  diagnostics operations;
- clients are **stateless retriers**: an operation that hits a program the
  server no longer has resident (404 after LRU session eviction, a shard
  respawn, or a restart) re-POSTs the source and retries once — the
  latency a real client would pay, charged to the op that paid it.

Because session residency per process is bounded (``serve_max_sessions``),
a working set larger than one process's pool *thrashes* the single-process
daemon — every touch of a cold program pays parse + warm-start — while a
sharded deployment holds ``shards x serve_max_sessions`` programs warm.
That aggregate-capacity effect, on top of per-core parallelism, is what
horizontal sharding buys; this benchmark measures both honestly (the
recorded results carry ``cpu_count``).

Results land in the ``"serve"`` section of ``BENCH_icp.json`` (merged,
never clobbering the cold/warm analysis sections) to track the serving
perf trajectory across PRs.
"""

from __future__ import annotations

import json
import os
import random
import statistics
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench.generator import GeneratorConfig, generate_program
from repro.core.config import ICPConfig
from repro.lang import ast
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.session.mutate import mutate_procedure, render_procedure

#: Operation mix: (kind, weight).  Reads dominate, as they do in serving —
#: an analysis daemon answers many report/diagnostics queries per edit
#: (editors debounce), and full re-submissions of a known program are rare.
OP_MIX: Tuple[Tuple[str, int], ...] = (
    ("report", 55),
    ("diagnostics", 25),
    ("edit", 15),
    ("analyze", 5),
)

#: Client-side socket timeout; far above any worker deadline so the only
#: timeouts measured are the server's own (degradation/504), not ours.
CLIENT_TIMEOUT_SECONDS = 120.0


def edit_script(
    seed: int, edits: int, procs: Optional[int] = None
) -> List[str]:
    """Deterministic source versions of one generated program.

    ``versions[0]`` is the pristine program; each later version mutates
    one procedure's literals (analysis-safe by construction, from
    :mod:`repro.session.mutate`).  Both the load generator and the serve
    differential suite replay these scripts.  ``procs`` sizes the program
    (``GeneratorConfig.n_procs``); ``None`` keeps the generator default.
    """
    config = GeneratorConfig(n_procs=procs) if procs else None
    program = generate_program(seed, config)
    versions = [pretty_program(program)]
    rng = random.Random((seed << 8) ^ 0x10ADCE)
    for _ in range(edits):
        program = parse_program(versions[-1])
        procs = list(program.procedures)
        index = 0
        mutated = procs[0]
        for _attempt in range(8):  # literal-free procedures mutate to no-ops
            index = rng.randrange(len(procs))
            mutated = mutate_procedure(procs[index], rng.randrange(1 << 30))
            if render_procedure(mutated) != render_procedure(procs[index]):
                break
        procs[index] = mutated
        versions.append(
            pretty_program(
                ast.Program(program.global_names, program.inits, procs)
            )
        )
    return versions


@dataclass
class LoadgenCorpus:
    """The generated working set: program ids and their edit scripts."""

    ids: List[str]
    versions: Dict[str, List[str]]

    @classmethod
    def build(
        cls,
        programs: int,
        seed: int,
        edits: int = 4,
        procs: Optional[int] = None,
    ) -> "LoadgenCorpus":
        ids = [f"lg{index:03d}" for index in range(programs)]
        versions = {
            pid: edit_script(seed * 1009 + index, edits, procs)
            for index, pid in enumerate(ids)
        }
        return cls(ids, versions)


def _http_request(
    base_url: str,
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
) -> Tuple[int, Dict[str, Any]]:
    # Loadgen speaks the current (versioned) surface; the unversioned
    # aliases exist for old clients, not this one.
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        base_url + "/v1" + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(
            request, timeout=CLIENT_TIMEOUT_SECONDS
        ) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        try:
            payload = json.loads(error.read())
        except (ValueError, UnicodeDecodeError):
            payload = {"error": "unreadable error body"}
        return error.code, payload


#: Server-side truths scraped from ``/metrics`` around a run, keyed by the
#: result-dict name.  Client-facing counters (requests, 503/504) prefer the
#: router's own registry (``{process="router"}``) when present; shard-side
#: counters (degradations, store traffic) read the unlabeled fleet
#: aggregate, which is also what a single-process daemon exposes.
_SCRAPE_COUNTERS: Tuple[Tuple[str, str, bool], ...] = (
    ("requests", "repro_http_requests_total", True),
    ("rejected_503", "repro_http_status_503_total", True),
    ("timeout_504", "repro_http_status_504_total", True),
    ("degraded", "repro_serve_degraded_total", False),
    ("store_hits", "repro_store_hits_total", False),
    ("store_misses", "repro_store_misses_total", False),
)


def scrape_server_counters(base_url: str) -> Optional[Dict[str, float]]:
    """The server's own counters, from ``GET /metrics`` (None on failure).

    Loadgen scrapes before and after a run; the delta is the server-side
    ledger of the run — degradations and rejections as the *server*
    counted them, cross-checkable against what clients observed.
    """
    from repro.obs.promexport import parse_prometheus_text

    try:
        with urllib.request.urlopen(
            base_url + "/v1/metrics", timeout=CLIENT_TIMEOUT_SECONDS
        ) as response:
            text = response.read().decode("utf-8")
    except (urllib.error.URLError, OSError, ValueError):
        return None  # metrics disabled (404) or no server: scrape is best-effort
    parsed = parse_prometheus_text(text)
    router = (("process", "router"),)
    counters: Dict[str, float] = {}
    for key, name, prefer_front in _SCRAPE_COUNTERS:
        value = parsed.get((name, ()), 0.0)
        if prefer_front and (name, router) in parsed:
            value = parsed[(name, router)]
        counters[key] = float(value)
    return counters


def _scrape_delta(
    before: Optional[Dict[str, float]], after: Optional[Dict[str, float]]
) -> Optional[Dict[str, float]]:
    if before is None or after is None:
        return None
    return {
        key: after.get(key, 0.0) - before.get(key, 0.0) for key in after
    }


@dataclass
class LoadgenResult:
    """What one loadgen run observed, end to end."""

    ops: int = 0
    ok: int = 0
    degraded: int = 0
    rejected: int = 0
    reloads: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    #: Completed-op latencies, per op kind and overall, in seconds.
    latencies: Dict[str, List[float]] = field(default_factory=dict)
    #: Server-side counter delta over the timed window (scraped from
    #: ``/metrics`` before and after; None when the scrape failed).
    server: Optional[Dict[str, float]] = None

    @property
    def throughput(self) -> float:
        """Completed (2xx) operations per wall-clock second: the
        saturation throughput when offered load exceeds capacity."""
        return self.ok / self.wall_seconds if self.wall_seconds else 0.0

    def record(self, kind: str, seconds: float) -> None:
        self.latencies.setdefault("all", []).append(seconds)
        self.latencies.setdefault(kind, []).append(seconds)

    def percentile(self, q: float, kind: str = "all") -> float:
        values = sorted(self.latencies.get(kind, ()))
        if not values:
            return 0.0
        if len(values) == 1:
            return values[0]
        rank = q / 100.0 * (len(values) - 1)
        low = int(rank)
        high = min(low + 1, len(values) - 1)
        return values[low] + (values[high] - values[low]) * (rank - low)

    def to_dict(self) -> Dict[str, Any]:
        kinds = {}
        for kind in sorted(self.latencies):
            kinds[kind] = {
                "count": len(self.latencies[kind]),
                "p50_ms": self.percentile(50, kind) * 1000.0,
                "p99_ms": self.percentile(99, kind) * 1000.0,
                "mean_ms": statistics.fmean(self.latencies[kind]) * 1000.0,
            }
        return {
            "ops": self.ops,
            "ok": self.ok,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "reloads": self.reloads,
            "errors": self.errors,
            "wall_seconds": self.wall_seconds,
            "throughput_ops_per_s": self.throughput,
            "latency": kinds,
            "server": self.server,
        }


class _Client(threading.Thread):
    """One closed-loop client: fire, observe, retry-on-404, repeat."""

    def __init__(
        self,
        index: int,
        base_url: str,
        corpus: LoadgenCorpus,
        ops: int,
        seed: int,
        result: LoadgenResult,
        lock: threading.Lock,
    ):
        super().__init__(name=f"loadgen-client-{index}", daemon=True)
        self.base_url = base_url
        self.corpus = corpus
        self.ops = ops
        self.rng = random.Random((seed << 16) ^ (index * 7919) ^ 0xC11E47)
        self.result = result
        self.lock = lock
        self._kinds = [kind for kind, weight in OP_MIX for _ in range(weight)]

    def _op(self) -> Tuple[str, str, str, Optional[Dict[str, Any]]]:
        """(kind, method, path, body) of the next operation."""
        pid = self.rng.choice(self.corpus.ids)
        versions = self.corpus.versions[pid]
        kind = self.rng.choice(self._kinds)
        if kind == "report":
            return kind, "GET", f"/programs/{pid}/report", None
        if kind == "diagnostics":
            return kind, "GET", f"/programs/{pid}/diagnostics", None
        if kind == "edit":
            source = versions[self.rng.randrange(1, len(versions))]
            return kind, "POST", f"/programs/{pid}/edits", {"source": source}
        source = versions[self.rng.randrange(len(versions))]
        return "analyze", "POST", f"/programs/{pid}", {"source": source}

    def _reload_body(self, pid: str) -> Dict[str, Any]:
        return {"source": self.corpus.versions[pid][0]}

    def run(self) -> None:
        for _ in range(self.ops):
            kind, method, path, body = self._op()
            pid = path.split("/")[2]
            started = time.perf_counter()
            status, payload = _http_request(self.base_url, method, path, body)
            reloaded = False
            if status == 404:
                # The program fell out of residency (LRU eviction, shard
                # respawn, restart): reload it and retry once.  The retry
                # latency is charged to this op — it is what the client
                # actually waited.
                reloaded = True
                status, payload = _http_request(
                    self.base_url,
                    "POST",
                    f"/programs/{pid}",
                    self._reload_body(pid),
                )
                if status == 200 and method == "GET":
                    status, payload = _http_request(
                        self.base_url, method, path, body
                    )
                elif status == 200 and kind == "edit":
                    status, payload = _http_request(
                        self.base_url, method, path, body
                    )
            elapsed = time.perf_counter() - started
            with self.lock:
                self.result.ops += 1
                if reloaded:
                    self.result.reloads += 1
                if status == 200:
                    self.result.ok += 1
                    self.result.record(kind, elapsed)
                    if isinstance(payload, dict) and payload.get("degraded"):
                        self.result.degraded += 1
                elif status == 503:
                    self.result.rejected += 1
                else:
                    self.result.errors += 1


def run_loadgen(
    base_url: str,
    *,
    clients: int = 8,
    ops: int = 400,
    programs: int = 12,
    seed: int = 0,
    edits: int = 4,
    procs: Optional[int] = None,
    corpus: Optional[LoadgenCorpus] = None,
    preload: bool = True,
) -> LoadgenResult:
    """Drive ``base_url`` with the mixed workload; returns observations.

    ``preload`` POSTs every program once before timing starts, so the
    measured window is steady-state serving (cold-load cost is the serve
    bench's ``warm`` section's business, not this one's).
    """
    corpus = corpus or LoadgenCorpus.build(programs, seed, edits, procs)
    if preload:
        for pid in corpus.ids:
            status, payload = _http_request(
                base_url, "POST", f"/programs/{pid}",
                {"source": corpus.versions[pid][0]},
            )
            if status != 200:
                raise RuntimeError(
                    f"preload of {pid} failed: HTTP {status} {payload}"
                )
    result = LoadgenResult()
    lock = threading.Lock()
    per_client = [ops // clients] * clients
    for index in range(ops % clients):
        per_client[index] += 1
    workers = [
        _Client(index, base_url, corpus, count, seed, result, lock)
        for index, count in enumerate(per_client)
        if count
    ]
    # Bracket the timed window with /metrics scrapes: the delta is the
    # server's own account of the run (degradations, 503s, store traffic).
    before = scrape_server_counters(base_url)
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    result.wall_seconds = time.perf_counter() - started
    result.server = _scrape_delta(before, scrape_server_counters(base_url))
    return result


def run_shard_comparison(
    config: ICPConfig,
    shard_counts: Sequence[int],
    *,
    out=None,
) -> Dict[str, Any]:
    """Boot a fresh deployment per shard count and loadgen each one.

    Every run gets its own store directory (no warm bleed-through between
    runs) and the same seeded corpus and traffic, so the only variable is
    the deployment shape.  ``shard_counts`` of ``1`` means the
    single-process daemon (no router hop — the PR 5 baseline).
    """
    from repro.serve import create_server

    out = out if out is not None else sys.stdout
    corpus = LoadgenCorpus.build(
        config.loadgen_programs,
        config.loadgen_seed,
        procs=config.loadgen_procs,
    )
    runs: Dict[str, Any] = {}
    for shards in shard_counts:
        with tempfile.TemporaryDirectory(prefix="repro-loadgen-store-") as tmp:
            run_config = ICPConfig.from_dict(
                {
                    **config.to_dict(),
                    "store_dir": os.path.join(tmp, "store"),
                    "serve_host": "127.0.0.1",
                    "serve_port": 0,
                    "serve_shards": 0 if shards <= 1 else shards,
                }
            )
            server = create_server(run_config)
            try:
                host, port = server.start()
                result = run_loadgen(
                    f"http://{host}:{port}",
                    clients=config.loadgen_clients,
                    ops=config.loadgen_ops,
                    programs=config.loadgen_programs,
                    seed=config.loadgen_seed,
                    corpus=corpus,
                )
            finally:
                server.close()
        runs[str(shards)] = result.to_dict()
        print(
            f"shards={shards}: {result.ok}/{result.ops} ok, "
            f"{result.reloads} reloads, {result.rejected} rejected, "
            f"p50 {result.percentile(50) * 1000:.1f}ms, "
            f"p99 {result.percentile(99) * 1000:.1f}ms, "
            f"{result.throughput:.1f} ops/s over {result.wall_seconds:.1f}s",
            file=out,
        )
    section: Dict[str, Any] = {
        "schema": "repro-icp/loadgen/v1",
        "cpu_count": os.cpu_count(),
        "clients": config.loadgen_clients,
        "ops": config.loadgen_ops,
        "programs": config.loadgen_programs,
        "procs_per_program": config.loadgen_procs,
        "seed": config.loadgen_seed,
        "max_sessions_per_process": config.serve_max_sessions,
        "workers_per_process": config.serve_workers,
        "runs": runs,
    }
    counts = sorted(int(n) for n in runs)
    if len(counts) >= 2 and runs[str(counts[0])]["throughput_ops_per_s"]:
        low, high = str(counts[0]), str(counts[-1])
        section["speedup"] = (
            runs[high]["throughput_ops_per_s"]
            / runs[low]["throughput_ops_per_s"]
        )
        print(
            f"saturation throughput x{section['speedup']:.2f} at "
            f"{high} shard(s) vs {low}",
            file=out,
        )
    return section


def merge_bench_json(path: str, section: Dict[str, Any]) -> None:
    """Write ``section`` as the ``"serve"`` key of a BENCH json file.

    The analysis bench's cold/warm sections are preserved; only the serve
    section is replaced.  A missing or unreadable file starts fresh.
    """
    payload: Dict[str, Any] = {"schema": "repro-icp/bench/v1"}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
        if isinstance(existing, dict):
            payload = existing
    except (OSError, ValueError):
        pass
    payload["serve"] = section
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
