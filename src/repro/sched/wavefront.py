"""Wavefront levels over the Program Call Graph.

The flow-sensitive ICP analyzes procedures in reverse postorder; a
procedure's entry environment reads the intraprocedural results of its
*non-fallback* callers only (fallback edges substitute the precomputed
flow-insensitive solution and carry no scheduling dependency).  Because a
non-fallback edge strictly increases the RPO index, the dependency relation
is acyclic even when the PCG is not, and admits a level assignment::

    level(p) = 1 + max(level(caller) | non-fallback edge caller -> p)

All procedures on one level are mutually independent: any PCG edge between
two same-level procedures is a fallback edge.  Analyzing level by level —
each level's procedures in any order, or concurrently — is therefore
observationally identical to the serial RPO traversal.

The reverse traversals (USE and the Section 3.2 returns extension) mirror
this: a procedure there depends on the callees *later* in RPO (earlier in
the reverse traversal), and calls to callees at the same or a smaller RPO
index fall back to REF / FI-return summaries.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.callgraph.pcg import CallEdge, PCG


class WavefrontSchedule:
    """Forward and reverse dependency levels of one PCG.

    ``forward_levels`` / ``reverse_levels`` partition ``pcg.nodes``; each
    level lists its procedures in RPO order, so iterating levels in order and
    procedures within a level reproduces a deterministic schedule.
    """

    def __init__(self, pcg: PCG):
        self.pcg = pcg
        self._index = {name: pcg.rpo_position(name) for name in pcg.nodes}
        self.forward_levels: List[List[str]] = self._forward()
        self.reverse_levels: List[List[str]] = self._reverse()

    # ------------------------------------------------------------------

    def _forward(self) -> List[List[str]]:
        levels: Dict[str, int] = {}
        for proc in self.pcg.rpo:
            level = 0
            for edge in self.pcg.edges_into(proc):
                if self._index[edge.caller] < self._index[proc]:
                    level = max(level, levels[edge.caller] + 1)
            levels[proc] = level
        return self._group(levels)

    def _reverse(self) -> List[List[str]]:
        levels: Dict[str, int] = {}
        for proc in reversed(self.pcg.rpo):
            level = 0
            for edge in self.pcg.edges_out_of(proc):
                if self._index[edge.callee] > self._index[proc]:
                    level = max(level, levels[edge.callee] + 1)
            levels[proc] = level
        return self._group(levels)

    def _group(self, levels: Dict[str, int]) -> List[List[str]]:
        if not levels:
            return []
        grouped: List[List[str]] = [[] for _ in range(max(levels.values()) + 1)]
        for proc in self.pcg.rpo:  # RPO order within each level
            grouped[levels[proc]].append(proc)
        return grouped

    # ------------------------------------------------------------------

    def forward_dependency(self, edge: CallEdge) -> bool:
        """True when the forward traversal needs the caller analyzed first."""
        return self._index[edge.caller] < self._index[edge.callee]

    def reverse_dependency(self, edge: CallEdge) -> bool:
        """True when the reverse traversal needs the callee analyzed first."""
        return self._index[edge.callee] > self._index[edge.caller]

    @property
    def depth(self) -> Tuple[int, int]:
        """(forward levels, reverse levels)."""
        return len(self.forward_levels), len(self.reverse_levels)

    @property
    def max_width(self) -> int:
        """Largest level size — the available parallelism bound."""
        widths = [len(level) for level in self.forward_levels]
        widths += [len(level) for level in self.reverse_levels]
        return max(widths, default=0)
