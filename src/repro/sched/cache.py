"""Content-addressed cache of per-procedure intraprocedural results.

A flow-sensitive intraprocedural analysis is a pure function of

- the procedure's source (its AST, rendered back to canonical MiniF text),
- the entry environment it is seeded with,
- the call effects visible at its call sites (MOD/REF sets, alias pairs,
  and — in the returns extension — callee return/exit summaries), and
- the analysis configuration (engine choice, float admission, globals).

Hashing those four components yields a key under which the
:class:`IntraResult` can be memoized: a procedure whose source and entry
environment are unchanged is never re-analyzed, and editing one procedure
invalidates exactly the analyses whose inputs actually changed — itself,
plus any PCG-dependent procedure whose entry environment or effect
summaries shifted as a consequence.  No explicit dependency tracking is
needed; content addressing subsumes it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.analysis.base import IntraResult
from repro.ir.lattice import LatticeValue
from repro.lang import ast
from repro.lang.pretty import pretty_stmt


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters of one :class:`SummaryCache`."""

    hits: int = 0
    misses: int = 0
    #: Slots (pass, procedure) whose key changed since the previous run —
    #: re-analyses forced by an actual input change.
    invalidations: int = 0
    entries: int = 0
    #: Entries garbage-collected by :meth:`SummaryCache.evict_procs` after a
    #: procedure was removed or rewritten in a long-lived session.
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            self.hits, self.misses, self.invalidations, self.entries,
            self.evictions,
        )


class SummaryCache:
    """Memoized per-procedure analyses keyed by content fingerprints.

    A *slot* is a ``(pass label, procedure name)`` pair; the cache remembers
    the last key seen per slot so it can count invalidations — lookups where
    the slot was populated but its inputs changed.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, IntraResult] = {}
        self._slot_keys: Dict[Tuple[str, str], str] = {}
        self.stats = CacheStats()

    def lookup(
        self, slot: Tuple[str, str], key: str, task=None
    ) -> Optional[IntraResult]:
        """Find ``key``; ``task`` (when given) lets backing tiers rebind.

        The in-memory tier ignores ``task``; the persistent subclass uses
        its symbol table to rebind entries loaded from disk.
        """
        entry = self._fetch(key, task)
        if entry is not None:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
            previous = self._slot_keys.get(slot)
            if previous is not None and previous != key:
                self.stats.invalidations += 1
        self._slot_keys[slot] = key
        return entry

    def _fetch(self, key: str, task) -> Optional[IntraResult]:
        """Tier-resolution hook: the base cache knows only memory."""
        return self._entries.get(key)

    def store(self, slot: Tuple[str, str], key: str, value: IntraResult) -> None:
        if key not in self._entries:
            self.stats.entries += 1
        self._entries[key] = value
        self._slot_keys[slot] = key

    def evict_procs(self, names: Iterable[str]) -> int:
        """Drop every slot for the named procedures, GC orphaned entries.

        PCG-edge-aware invalidation for session edits: a removed (or
        rewritten) procedure's slots go away immediately, and any memoized
        result no longer referenced by a surviving slot is reclaimed rather
        than accumulating for the lifetime of the session.  Returns the
        number of entries reclaimed.
        """
        doomed = set(names)
        self._slot_keys = {
            slot: key
            for slot, key in self._slot_keys.items()
            if slot[1] not in doomed
        }
        live_keys = set(self._slot_keys.values())
        reclaimed = [key for key in self._entries if key not in live_keys]
        for key in reclaimed:
            del self._entries[key]
        self.stats.evictions += len(reclaimed)
        self.stats.entries = len(self._entries)
        return len(reclaimed)

    def clear(self) -> None:
        self._entries.clear()
        self._slot_keys.clear()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)


# ----------------------------------------------------------------------
# Fingerprint helpers.
# ----------------------------------------------------------------------


def _digest(*parts: str) -> str:
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(part.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


def procedure_fingerprint(proc: ast.Procedure) -> str:
    """Hash of the procedure's canonical source rendering."""
    header = f"proc {proc.name}({', '.join(proc.formals)})"
    return _digest(header, pretty_stmt(proc.body))


def value_token(value: LatticeValue) -> str:
    # Constants are type-sensitive (Const(2) != Const(2.0)); bake the payload
    # type into the token so int/float twins never collide.
    if value.is_const:
        return f"C:{type(value.const_value).__name__}:{value.const_value!r}"
    return "T" if value.is_top else "B"


def env_fingerprint(env: Mapping[str, LatticeValue]) -> str:
    """Hash of an entry environment (order-insensitive)."""
    return _digest(
        *(f"{name}={value_token(env[name])}" for name in sorted(env))
    )


def effects_fingerprint(
    sites: Iterable[Tuple[str, Iterable[str], Iterable[str], str]],
    alias_pairs: Iterable[Tuple[str, str]] = (),
) -> str:
    """Hash of the call effects visible inside one procedure.

    ``sites`` yields, per call site in order, ``(callee, modified vars,
    recorded globals, extra)`` where ``extra`` encodes any pass-specific
    summary consulted at the site (callee return value, exit-value table).
    """
    parts = []
    for callee, modified, recorded, extra in sites:
        parts.append(
            f"{callee}|{','.join(sorted(modified))}"
            f"|{','.join(sorted(recorded))}|{extra}"
        )
    parts.append("aliases:" + ";".join(f"{a}~{b}" for a, b in sorted(alias_pairs)))
    return _digest(*parts)


def config_fingerprint(
    engine: str,
    propagate_floats: bool,
    global_names: Iterable[str],
    pass_label: str,
    engine_backend: str = "graph",
) -> str:
    """Hash of the configuration facets an intraprocedural run observes.

    The engine backend is part of the key even though both backends must
    produce identical results: keeping their cache entries separate means a
    differential run never serves one backend's summaries to the other,
    which would silently turn the parity suite into a self-comparison.
    """
    return _digest(
        f"engine={engine}",
        f"floats={propagate_floats}",
        "globals=" + ",".join(global_names),
        f"pass={pass_label}",
        f"backend={engine_backend}",
    )


def combine_key(*fingerprints: str) -> str:
    return _digest(*fingerprints)
