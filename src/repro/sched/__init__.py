"""Parallel wavefront scheduling and summary caching for the ICP pipeline.

The paper's central cost claim — one intraprocedural analysis per procedure —
has a scheduling corollary: within one topological traversal of the PCG,
procedures whose analyses have no pending inputs are *independent* and can be
analyzed concurrently.  This package turns that observation into machinery:

- :mod:`repro.sched.wavefront` groups procedures into dependency levels for
  the forward (flow-sensitive ICP) and reverse (USE / returns) traversals;
- :mod:`repro.sched.pool` dispatches one level's analyses to a
  ``concurrent.futures`` worker pool (threads by default, processes opt-in);
- :mod:`repro.sched.cache` memoizes per-procedure intraprocedural results
  under a content-addressed key, so unchanged procedures are never
  re-analyzed across pipeline runs;
- :mod:`repro.sched.scheduler` ties the three together behind the
  :class:`Scheduler` facade the pipeline phases consume.
"""

from repro.sched.cache import CacheStats, SummaryCache
from repro.sched.pool import TaskPool, resolve_workers, spawn_context
from repro.sched.scheduler import AnalysisTask, Scheduler, SchedulerStats
from repro.sched.wavefront import WavefrontSchedule

__all__ = [
    "AnalysisTask",
    "CacheStats",
    "Scheduler",
    "SchedulerStats",
    "SummaryCache",
    "TaskPool",
    "WavefrontSchedule",
    "resolve_workers",
    "spawn_context",
]
