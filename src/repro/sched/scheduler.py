"""The scheduler facade consumed by the pipeline phases.

A :class:`Scheduler` owns a worker pool and (optionally) a
:class:`~repro.sched.cache.SummaryCache`, and executes *levels* of
:class:`AnalysisTask` — one level at a time, tasks within a level
concurrently.  The pipeline phases keep their serial code paths for the
default configuration (one worker, no cache); the scheduler engages only
when parallelism or caching is requested, and is constructed so that the
scheduled result is observationally identical to the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.base import CallEffects, IntraResult
from repro.ir.lattice import LatticeValue
from repro.lang import ast
from repro.lang.symbols import ProcedureSymbols
from repro.sched.cache import CacheStats, SummaryCache, combine_key
from repro.sched.pool import TaskPool, resolve_workers, run_analysis_task
from repro.sched.wavefront import WavefrontSchedule


@dataclass(frozen=True)
class AnalysisTask:
    """One per-procedure intraprocedural analysis, ready to dispatch.

    ``fingerprints`` carries the content-address components (procedure
    source, entry environment, effects, configuration) the cache combines
    into the task's key; an empty tuple marks the task uncacheable.
    """

    proc_name: str
    proc: ast.Procedure
    symbols: ProcedureSymbols
    entry_env: Dict[str, LatticeValue]
    effects: CallEffects
    engine: str
    pass_label: str = "fs"
    record_exit_vars: Optional[FrozenSet[str]] = None
    fingerprints: Tuple[str, ...] = ()

    @property
    def cacheable(self) -> bool:
        return bool(self.fingerprints)

    @property
    def slot(self) -> Tuple[str, str]:
        return (self.pass_label, self.proc_name)


@dataclass
class SchedulerStats:
    """What the scheduler did during one pipeline run."""

    workers: int = 1
    executor: str = "thread"
    forward_levels: int = 0
    reverse_levels: int = 0
    max_level_width: int = 0
    #: Analyses actually executed by an engine.
    tasks_run: int = 0
    #: Analyses skipped because the cache already held their result.
    tasks_cached: int = 0
    #: Summed engine seconds across workers (CPU time, not wall clock).
    analysis_seconds: float = 0.0
    cache: Optional[CacheStats] = None

    @property
    def tasks_total(self) -> int:
        return self.tasks_run + self.tasks_cached


class Scheduler:
    """Wavefront dispatch plus summary caching for one pipeline run."""

    def __init__(
        self,
        workers: int = 1,
        executor: str = "thread",
        cache: Optional[SummaryCache] = None,
    ):
        self.workers = resolve_workers(workers)
        self.cache = cache
        self._pool = TaskPool(self.workers, executor)
        self.stats = SchedulerStats(workers=self.workers, executor=executor)
        self._wavefronts: Dict[int, WavefrontSchedule] = {}
        # Baseline for per-run cache deltas: one scheduler spans one pipeline
        # run, while the cache (and its counters) outlives it.
        self._cache_baseline = cache.stats.snapshot() if cache is not None else None

    @classmethod
    def from_config(
        cls, config, cache: Optional[SummaryCache] = None
    ) -> "Scheduler":
        """Build a scheduler from an :class:`ICPConfig`-shaped object."""
        return cls(
            workers=getattr(config, "workers", 1),
            executor=getattr(config, "executor", "thread"),
            cache=cache,
        )

    # ------------------------------------------------------------------

    @property
    def engaged(self) -> bool:
        """True when scheduling changes anything over the serial path."""
        return self.workers > 1 or self.cache is not None

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def wavefront(self, pcg) -> WavefrontSchedule:
        """The (memoized) wavefront schedule of ``pcg``."""
        schedule = self._wavefronts.get(id(pcg))
        if schedule is None:
            schedule = WavefrontSchedule(pcg)
            self._wavefronts[id(pcg)] = schedule
            self.stats.forward_levels = len(schedule.forward_levels)
            self.stats.reverse_levels = len(schedule.reverse_levels)
            self.stats.max_level_width = max(
                self.stats.max_level_width, schedule.max_width
            )
        return schedule

    def run_level(self, tasks: Sequence[AnalysisTask]) -> Dict[str, IntraResult]:
        """Execute one wavefront level, consulting the cache first."""
        results: Dict[str, IntraResult] = {}
        pending: List[Tuple[AnalysisTask, Optional[str]]] = []
        for task in tasks:
            key = None
            if self.cache is not None and task.cacheable:
                key = combine_key(*task.fingerprints)
                cached = self.cache.lookup(task.slot, key)
                if cached is not None:
                    results[task.proc_name] = cached
                    self.stats.tasks_cached += 1
                    continue
            pending.append((task, key))

        outcomes = self._pool.map(
            run_analysis_task, [task for task, _ in pending]
        )
        for (task, key), (intra, seconds) in zip(pending, outcomes):
            if key is not None and self.cache is not None:
                self.cache.store(task.slot, key, intra)
            results[task.proc_name] = intra
            self.stats.tasks_run += 1
            self.stats.analysis_seconds += seconds
        return results

    def map(self, fn, payloads: Sequence) -> List:
        """Plain (uncached) parallel map for non-engine level work."""
        return self._pool.map(fn, payloads)

    # ------------------------------------------------------------------

    def finish(self) -> SchedulerStats:
        """Snapshot stats (attaching this run's cache deltas), release the pool."""
        if self.cache is not None:
            current = self.cache.stats
            base = self._cache_baseline
            self.stats.cache = CacheStats(
                hits=current.hits - base.hits,
                misses=current.misses - base.misses,
                invalidations=current.invalidations - base.invalidations,
                entries=current.entries,
            )
        self.close()
        return self.stats

    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
