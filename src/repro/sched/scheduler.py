"""The scheduler facade consumed by the pipeline phases.

A :class:`Scheduler` owns a worker pool and (optionally) a
:class:`~repro.sched.cache.SummaryCache`, and executes *levels* of
:class:`AnalysisTask` — one level at a time, tasks within a level
concurrently.  The pipeline phases keep their serial code paths for the
default configuration (one worker, no cache); the scheduler engages only
when parallelism or caching is requested, and is constructed so that the
scheduled result is observationally identical to the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.base import CallEffects, IntraResult
from repro.ir.lattice import LatticeValue
from repro.lang import ast
from repro.lang.symbols import ProcedureSymbols
from repro.obs import NULL_OBS, Observability
from repro.sched.cache import CacheStats, SummaryCache, combine_key
from repro.sched.pool import (
    TaskPool,
    resolve_workers,
    run_analysis_task,
    traced_task_runner,
)
from repro.sched.wavefront import WavefrontSchedule


@dataclass(frozen=True)
class AnalysisTask:
    """One per-procedure intraprocedural analysis, ready to dispatch.

    ``fingerprints`` carries the content-address components (procedure
    source, entry environment, effects, configuration) the cache combines
    into the task's key; an empty tuple marks the task uncacheable.
    """

    proc_name: str
    proc: ast.Procedure
    symbols: ProcedureSymbols
    entry_env: Dict[str, LatticeValue]
    effects: CallEffects
    engine: str
    pass_label: str = "fs"
    #: Solve-core implementation of the SCC engine (``"graph"`` or
    #: ``"flat"``); ignored by the simple engine.
    engine_backend: str = "graph"
    record_exit_vars: Optional[FrozenSet[str]] = None
    fingerprints: Tuple[str, ...] = ()
    #: Entry-environment fingerprint when the task is one *value context* of
    #: its procedure (``context_mode="value-contexts"``); ``None`` for the
    #: classic one-task-per-procedure passes.
    context: Optional[str] = None

    @property
    def cacheable(self) -> bool:
        return bool(self.fingerprints)

    @property
    def key(self) -> str:
        """Result-table key: the procedure, qualified by context if any.

        Two contexts of one procedure may share a wavefront level, so
        result keying must distinguish them.
        """
        if self.context is None:
            return self.proc_name
        return f"{self.proc_name}@{self.context}"

    @property
    def slot(self) -> Tuple[str, str]:
        # The procedure name stays in slot[1]: SummaryCache.evict_procs
        # matches on it, so editing a procedure invalidates every context.
        if self.context is None:
            return (self.pass_label, self.proc_name)
        return (f"{self.pass_label}@{self.context}", self.proc_name)


@dataclass
class SchedulerStats:
    """What the scheduler did during one pipeline run."""

    workers: int = 1
    executor: str = "thread"
    forward_levels: int = 0
    reverse_levels: int = 0
    max_level_width: int = 0
    #: Analyses actually executed by an engine.
    tasks_run: int = 0
    #: Analyses skipped because the cache already held their result.
    tasks_cached: int = 0
    #: Analyses skipped *before* reaching the cache because an incremental
    #: session proved the procedure clean (outside the dirty region).
    tasks_reused: int = 0
    #: Summed engine seconds across workers (CPU time, not wall clock).
    analysis_seconds: float = 0.0
    cache: Optional[CacheStats] = None

    @property
    def tasks_total(self) -> int:
        return self.tasks_run + self.tasks_cached

    @property
    def reuse_rate(self) -> float:
        """Fraction of analyses served without an engine run (cache + clean)."""
        total = self.tasks_run + self.tasks_cached + self.tasks_reused
        if not total:
            return 0.0
        return (self.tasks_cached + self.tasks_reused) / total


class Scheduler:
    """Wavefront dispatch plus summary caching for one pipeline run."""

    def __init__(
        self,
        workers: int = 1,
        executor: str = "thread",
        cache: Optional[SummaryCache] = None,
        obs: Optional[Observability] = None,
    ):
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.obs = obs or NULL_OBS
        self._pool = TaskPool(self.workers, executor)
        self.stats = SchedulerStats(workers=self.workers, executor=executor)
        self._wavefronts: Dict[int, WavefrontSchedule] = {}
        self._levels_dispatched = 0
        # Baseline for per-run cache deltas: one scheduler spans one pipeline
        # run, while the cache (and its counters) outlives it.
        self._cache_baseline = cache.stats.snapshot() if cache is not None else None

    @classmethod
    def from_config(
        cls,
        config,
        cache: Optional[SummaryCache] = None,
        obs: Optional[Observability] = None,
    ) -> "Scheduler":
        """Build a scheduler from an :class:`ICPConfig`-shaped object."""
        return cls(
            workers=getattr(config, "workers", 1),
            executor=getattr(config, "executor", "thread"),
            cache=cache,
            obs=obs,
        )

    # ------------------------------------------------------------------

    @property
    def engaged(self) -> bool:
        """True when scheduling changes anything over the serial path."""
        return self.workers > 1 or self.cache is not None

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def wavefront(self, pcg) -> WavefrontSchedule:
        """The (memoized) wavefront schedule of ``pcg``."""
        schedule = self._wavefronts.get(id(pcg))
        if schedule is None:
            schedule = WavefrontSchedule(pcg)
            self._wavefronts[id(pcg)] = schedule
            self.stats.forward_levels = len(schedule.forward_levels)
            self.stats.reverse_levels = len(schedule.reverse_levels)
            self.stats.max_level_width = max(
                self.stats.max_level_width, schedule.max_width
            )
        return schedule

    def run_level(self, tasks: Sequence[AnalysisTask]) -> Dict[str, IntraResult]:
        """Execute one wavefront level, consulting the cache first."""
        obs = self.obs
        tracer = obs.tracer
        metrics = obs.metrics
        results: Dict[str, IntraResult] = {}
        pending: List[Tuple[AnalysisTask, Optional[str]]] = []
        cached_count = 0
        for task in tasks:
            key = None
            if self.cache is not None and task.cacheable:
                key = combine_key(*task.fingerprints)
                cached = self.cache.lookup(task.slot, key, task=task)
                if cached is not None:
                    results[task.key] = cached
                    self.stats.tasks_cached += 1
                    cached_count += 1
                    if tracer.enabled:
                        tracer.instant(
                            "cache-hit", cat="cache",
                            proc=task.proc_name, pass_label=task.pass_label,
                        )
                    metrics.counter("cache.hits").inc()
                    continue
                if tracer.enabled:
                    tracer.instant(
                        "cache-miss", cat="cache",
                        proc=task.proc_name, pass_label=task.pass_label,
                    )
                metrics.counter("cache.misses").inc()
            pending.append((task, key))

        level_index = self._levels_dispatched
        self._levels_dispatched += 1
        metrics.counter("sched.levels").inc()
        metrics.counter("sched.tasks_cached").inc(cached_count)
        metrics.counter("sched.tasks_run").inc(len(pending))

        runner = run_analysis_task
        if tracer.enabled and self._pool.kind == "thread":
            # Worker threads share the coordinator's clock: record real
            # engine spans on each worker's own trace track.
            runner = traced_task_runner(tracer)
        pass_label = tasks[0].pass_label if tasks else "?"
        with tracer.span(
            "wavefront-level",
            cat="sched",
            level=level_index,
            pass_label=pass_label,
            tasks=len(tasks),
            cached=cached_count,
            dispatched=len(pending),
            workers=self.workers,
        ):
            level_started = tracer._now() if tracer.enabled else 0.0
            outcomes = self._pool.map(runner, [task for task, _ in pending])
        for index, ((task, key), (intra, seconds)) in enumerate(
            zip(pending, outcomes)
        ):
            if key is not None and self.cache is not None:
                self.cache.store(task.slot, key, intra)
            results[task.key] = intra
            self.stats.tasks_run += 1
            self.stats.analysis_seconds += seconds
            if obs.enabled:
                self._observe_task(task, intra, seconds, index, level_started)
        return results

    def _observe_task(
        self,
        task: AnalysisTask,
        intra: IntraResult,
        seconds: float,
        index: int,
        level_started: float,
    ) -> None:
        """Feed one executed task's outcome to the observability context."""
        obs = self.obs
        detail = intra.detail
        visits = getattr(detail, "visits", None)
        ssa_size = getattr(detail, "ssa_size", None)
        obs.profiler.record_procedure(
            task.proc_name, seconds, ssa_size=ssa_size, visits=visits
        )
        metrics = obs.metrics
        if metrics.enabled:
            metrics.histogram("engine.task_seconds").observe(seconds)
            if visits:
                for key, value in visits.items():
                    metrics.counter(f"scc.{key}").inc(value)
        if obs.tracer.enabled and self._pool.kind == "process":
            # Worker processes live in another clock domain: synthesize the
            # engine span from the worker-measured duration, rebased at the
            # level's start on a virtual worker track.
            obs.tracer.complete(
                "engine",
                level_started,
                seconds,
                tid=f"process-worker-{index % self.workers}",
                proc=task.proc_name,
                pass_label=task.pass_label,
                engine=task.engine,
                clock="synthesized",
            )

    def map(self, fn, payloads: Sequence, label: Optional[str] = None) -> List:
        """Plain (uncached) parallel map for non-engine level work."""
        tracer = self.obs.tracer
        if label is not None and tracer.enabled:
            with tracer.span(label, cat="sched", tasks=len(payloads)):
                return self._pool.map(fn, payloads)
        return self._pool.map(fn, payloads)

    # ------------------------------------------------------------------

    def finish(self) -> SchedulerStats:
        """Snapshot stats (attaching this run's cache deltas), release the pool."""
        if self.cache is not None:
            current = self.cache.stats
            base = self._cache_baseline
            self.stats.cache = CacheStats(
                hits=current.hits - base.hits,
                misses=current.misses - base.misses,
                invalidations=current.invalidations - base.invalidations,
                entries=current.entries,
                evictions=current.evictions - base.evictions,
            )
        metrics = self.obs.metrics
        if metrics.enabled:
            if self.stats.tasks_reused:
                metrics.counter("sched.tasks_reused").inc(self.stats.tasks_reused)
            metrics.gauge("sched.workers").set(self.stats.workers)
            metrics.gauge("sched.forward_levels").set(self.stats.forward_levels)
            metrics.gauge("sched.reverse_levels").set(self.stats.reverse_levels)
            metrics.gauge("sched.max_level_width").max(self.stats.max_level_width)
            if self.stats.cache is not None:
                metrics.gauge("cache.invalidations").set(
                    self.stats.cache.invalidations
                )
                metrics.gauge("cache.entries").set(self.stats.cache.entries)
        self.close()
        return self.stats

    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
