"""Worker-pool dispatch for per-procedure analyses.

Threads are the default executor: intraprocedural analyses share read-only
program structures, and thread dispatch needs no serialization.  A process
pool is available opt-in (``executor="process"``) for workloads where the
interpreter lock dominates; every task payload it receives is picklable by
construction (ASTs, symbols, lattice values, and summary effects are plain
dataclasses).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.analysis.base import IntraEngine
from repro.analysis.scc import SCCEngine
from repro.analysis.simple import SimpleEngine

_T = TypeVar("_T")
_R = TypeVar("_R")

_EXECUTOR_KINDS = ("thread", "process")


def spawn_context():
    """The ``spawn`` multiprocessing context every repro process uses.

    The platform default start method may be fork (POSIX Python < 3.14),
    which clones whatever locks and threads the parent holds mid-analysis —
    the serve daemon and the observability layer both run threads, so a
    forked child can inherit a locked lock and deadlock.  Spawn is safe
    everywhere; shared by the process :class:`TaskPool` executor and the
    serve shard supervisor (:mod:`repro.serve.router`), whose entrypoints
    are module-level picklables by construction.
    """
    import multiprocessing

    return multiprocessing.get_context("spawn")


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count knob: ``0``/``None`` means all CPU cores."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def _make_intra_engine(name: str, backend: str = "graph") -> IntraEngine:
    # Mirrors core.flow_sensitive.make_engine without importing repro.core
    # (sched sits below core in the layering).
    if name == "scc":
        return SCCEngine(backend=backend)
    if name == "simple":
        return SimpleEngine()
    raise ValueError(f"unknown intraprocedural engine {name!r}")


def run_analysis_task(task):
    """Execute one :class:`~repro.sched.scheduler.AnalysisTask`.

    Module-level so a process pool can pickle it.  Returns the
    :class:`IntraResult` plus the seconds spent in the engine, which the
    scheduler accumulates into the pipeline's intra-analysis time.
    """
    engine = _make_intra_engine(task.engine, getattr(task, "engine_backend", "graph"))
    record = set(task.record_exit_vars) if task.record_exit_vars is not None else None
    started = time.perf_counter()
    intra = engine.analyze(
        task.proc, task.symbols, dict(task.entry_env), task.effects,
        record_exit_vars=record,
    )
    return intra, time.perf_counter() - started


def traced_task_runner(tracer):
    """Wrap :func:`run_analysis_task` with a worker-side engine span.

    Only valid for thread pools: the closure captures the coordinator's
    tracer (unpicklable by design), and worker threads share its clock, so
    each engine run lands as a real span on that worker's trace track.
    Process pools instead synthesize spans on the coordinator from the
    durations this function's plain sibling already returns.
    """

    def run(task):
        with tracer.span(
            "engine",
            cat="engine",
            proc=task.proc_name,
            pass_label=task.pass_label,
            engine=task.engine,
        ):
            return run_analysis_task(task)

    return run


class TaskPool:
    """A lazily created ``concurrent.futures`` pool with a serial fast path.

    With one worker (or one task) everything runs inline on the calling
    thread, so a scheduler configured for ``workers=1`` adds no dispatch
    overhead and no nondeterminism.
    """

    def __init__(self, workers: int = 1, kind: str = "thread"):
        if kind not in _EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {kind!r}; expected one of {_EXECUTOR_KINDS}"
            )
        self.workers = resolve_workers(workers)
        self.kind = kind
        self._executor: Optional[Executor] = None

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self.kind == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=spawn_context(),
                )
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-sched",
                )
        return self._executor

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> List[_R]:
        """Apply ``fn`` to every item, preserving input order."""
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_executor().map(fn, items))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "TaskPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
