"""Unified metrics registry for the analysis pipeline.

One API absorbs what used to be scattered ad-hoc counters — the
scheduler's :class:`~repro.sched.scheduler.SchedulerStats`, the summary
cache's hit/miss/invalidation counts, the SCC engine's visit counts —
behind three instrument kinds:

- :class:`Counter` — monotonically increasing event counts;
- :class:`Gauge` — last-write-wins values (pool width, cache entries);
- :class:`Histogram` — observation distributions (per-procedure engine
  seconds) with count/sum/min/max and exponential buckets, plus a
  monotonic-clock :meth:`Histogram.time` timer.

A registry snapshot is a plain nested dict, serializable to JSON for the
``--metrics-json`` CLI flag.  The disabled registry hands out shared
no-op instruments, so instrumented code paths cost an attribute check and
nothing else when metrics are off.

Snapshots compose: :func:`merge_snapshots` sums counters, sums gauges,
and merges histogram summaries bucket-wise, which is how the shard
router's ``GET /metrics`` aggregates a fleet.  Quantiles are estimated
from (possibly merged) bucket counts by :func:`summary_quantile`, with
the degenerate cases — empty histogram, a single sample, all samples in
one bucket — handled exactly rather than by interpolation artifacts.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_TIMER = _NullTimer()


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: float = 0
        self._lock = threading.Lock()

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    def add(self, delta) -> None:
        """Adjust the value by ``delta`` (e.g. an in-flight request count)."""
        with self._lock:
            self._value += delta

    def max(self, value) -> None:
        """Keep the maximum of all reported values."""
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self):
        return self._value


#: Default histogram bucket bounds (seconds-flavored, exponential).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class _Timer:
    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: "Histogram"):
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._started)


class Histogram:
    """An observation distribution with fixed exponential buckets."""

    __slots__ = ("name", "buckets", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.buckets = tuple(buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # +1 overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1
                    break
            else:
                self._counts[-1] += 1

    def time(self) -> _Timer:
        """A monotonic-clock context manager feeding this histogram."""
        return _Timer(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count if self._count else 0.0,
                "min": self._min,
                "max": self._max,
                "buckets": {
                    **{
                        f"le_{bound:g}": count
                        for bound, count in zip(self.buckets, self._counts)
                        if count
                    },
                    **({"overflow": self._counts[-1]} if self._counts[-1] else {}),
                },
            }

    def quantile(self, q: float) -> float:
        """Estimate the q-th percentile (0..100) from the bucket counts."""
        return summary_quantile(self.summary(), q)


class _NullCounter(Counter):
    __slots__ = ()

    def __init__(self):
        super().__init__("null")

    def inc(self, amount: int = 1) -> None:
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def __init__(self):
        super().__init__("null")

    def set(self, value) -> None:
        return None

    def add(self, delta) -> None:
        return None

    def max(self, value) -> None:
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self):
        super().__init__("null", buckets=())

    def observe(self, value: float) -> None:
        return None

    def time(self) -> _NullTimer:  # type: ignore[override]
        return _NULL_TIMER


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Names are dotted paths (``cache.hits``, ``engine.task_seconds``); the
    snapshot groups instruments by kind and sorts by name, so serialized
    output is deterministic.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name, buckets)
            return metric

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable view of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "histograms": {
                name: histograms[name].summary() for name in sorted(histograms)
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")


#: Shared disabled registry (hands out no-op instruments).
NULL_REGISTRY = MetricsRegistry(enabled=False)


# ----------------------------------------------------------------------
# Snapshot algebra: merging and quantile estimation.
#
# The shard router aggregates one registry snapshot per worker process;
# everything below operates on the plain-dict snapshot format so it works
# identically on live registries, JSON round-trips, and merged fleets.
# ----------------------------------------------------------------------


def _bucket_bound(key: str) -> float:
    """The upper bound a summary bucket key encodes (overflow = +inf)."""
    if key == "overflow":
        return float("inf")
    return float(key[3:])  # strip the "le_" prefix


def merge_summaries(summaries: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge histogram summaries bucket-wise (count/sum/min/max add up).

    Summaries with disjoint bucket keys merge fine — a missing bucket is
    a zero count.  The result is in the same format ``Histogram.summary``
    produces, so it nests in snapshots and renders to exposition text.
    """
    count = 0
    total = 0.0
    low: Optional[float] = None
    high: Optional[float] = None
    buckets: Dict[str, int] = {}
    for summary in summaries:
        count += summary.get("count", 0)
        total += summary.get("sum", 0.0)
        for edge, picker in (("min", min), ("max", max)):
            value = summary.get(edge)
            if value is None:
                continue
            current = low if edge == "min" else high
            merged = value if current is None else picker(current, value)
            if edge == "min":
                low = merged
            else:
                high = merged
        for key, n in (summary.get("buckets") or {}).items():
            buckets[key] = buckets.get(key, 0) + n
    return {
        "count": count,
        "sum": total,
        "mean": total / count if count else 0.0,
        "min": low,
        "max": high,
        "buckets": dict(
            sorted(buckets.items(), key=lambda item: _bucket_bound(item[0]))
        ),
    }


def summary_quantile(summary: Dict[str, Any], q: float) -> float:
    """Estimate the q-th percentile (0..100) of a histogram summary.

    Works on single and merged summaries alike.  Edge cases are exact
    rather than interpolated: an empty histogram answers 0.0, a single
    sample answers that sample, and every estimate is clamped into the
    observed [min, max] envelope (so the overflow bucket never invents a
    value beyond the true maximum).
    """
    count = summary.get("count", 0)
    if not count:
        return 0.0
    low = summary.get("min")
    high = summary.get("max")
    if count == 1 or low == high:
        return low if low is not None else 0.0
    q = min(max(q, 0.0), 100.0)
    target = q / 100.0 * count
    buckets = sorted(
        ((_bucket_bound(key), n) for key, n in (summary.get("buckets") or {}).items()),
        key=lambda item: item[0],
    )
    if not buckets:  # summary without bucket detail: fall back to the envelope
        return high if high is not None else 0.0
    cumulative = 0
    previous_bound = low if low is not None else 0.0
    for bound, n in buckets:
        if not n:
            previous_bound = min(bound, high) if high is not None else bound
            continue
        if cumulative + n >= target:
            upper = bound
            if upper == float("inf") or (high is not None and upper > high):
                upper = high if high is not None else previous_bound
            fraction = (target - cumulative) / n
            estimate = previous_bound + (upper - previous_bound) * fraction
            break
        cumulative += n
        previous_bound = min(bound, high) if high is not None else bound
    else:  # target beyond every bucket (numeric fuzz): answer the max
        estimate = high if high is not None else previous_bound
    if low is not None:
        estimate = max(estimate, low)
    if high is not None:
        estimate = min(estimate, high)
    return estimate


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge registry snapshots: sum counters and gauges, merge histograms.

    Gauges add up because every serve gauge is an occupancy (resident
    sessions, in-flight requests, live shards) — fleet totals are the
    meaningful aggregation.  Histograms merge bucket-wise via
    :func:`merge_summaries`, preserving quantile estimation.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, List[Dict[str, Any]]] = {}
    for snapshot in snapshots:
        if not isinstance(snapshot, dict):
            continue
        for name, value in (snapshot.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in (snapshot.get("gauges") or {}).items():
            gauges[name] = gauges.get(name, 0) + value
        for name, summary in (snapshot.get("histograms") or {}).items():
            histograms.setdefault(name, []).append(summary)
    return {
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "histograms": {
            name: merge_summaries(histograms[name])
            for name in sorted(histograms)
        },
    }
