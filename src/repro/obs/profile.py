"""Profiling hooks: phase timings and the hot-procedure report.

A :class:`Profiler` collects

- per-phase wall *and* CPU time (``time.perf_counter`` /
  ``time.process_time``) for every Figure 2 pipeline phase,
- per-procedure engine time: every intraprocedural analysis reports its
  duration (and, for the SCC engine, its SSA size and visit counts), which
  accumulate into per-procedure totals and a global histogram, and
- an opt-in **hot procedure** report ranking procedures by total engine
  time alongside their run counts and SSA sizes — the "where does the
  analysis spend its time" table that scaling work starts from.

Like the tracer and registry, a disabled profiler is a shared no-op: the
hot paths check ``profiler.enabled`` (one attribute load) and skip all
recording.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import Histogram


@dataclass
class PhaseTiming:
    """Accumulated wall/CPU seconds of one pipeline phase."""

    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    count: int = 0


@dataclass
class ProcedureProfile:
    """Accumulated engine work for one procedure."""

    name: str
    engine_seconds: float = 0.0
    runs: int = 0
    #: SSA names created by the last engine run (SCC engine only).
    ssa_size: Optional[int] = None
    #: Summed engine visit counters (flow edges, SSA revisits, ...).
    visits: Dict[str, int] = field(default_factory=dict)


class _PhaseSpan:
    __slots__ = ("_profiler", "_name", "_wall", "_cpu")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name
        self._wall = 0.0
        self._cpu = 0.0

    def __enter__(self) -> "_PhaseSpan":
        self._wall = time.perf_counter()
        self._cpu = time.process_time()
        return self

    def __exit__(self, *exc_info) -> None:
        self._profiler._record_phase(
            self._name,
            time.perf_counter() - self._wall,
            time.process_time() - self._cpu,
        )


class _NullPhaseSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullPhaseSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_PHASE = _NullPhaseSpan()


class Profiler:
    """Collects phase and per-procedure timing for one or more runs."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self.phases: Dict[str, PhaseTiming] = {}
        self.procedures: Dict[str, ProcedureProfile] = {}
        #: Distribution of individual engine-run durations (seconds).
        self.task_seconds = Histogram("profile.task_seconds")

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------

    def phase(self, name: str):
        """Context manager timing one pipeline phase (wall + CPU)."""
        if not self.enabled:
            return _NULL_PHASE
        return _PhaseSpan(self, name)

    def _record_phase(self, name: str, wall: float, cpu: float) -> None:
        with self._lock:
            timing = self.phases.get(name)
            if timing is None:
                timing = self.phases[name] = PhaseTiming()
            timing.wall_seconds += wall
            timing.cpu_seconds += cpu
            timing.count += 1

    def record_procedure(
        self,
        name: str,
        seconds: float,
        ssa_size: Optional[int] = None,
        visits: Optional[Dict[str, int]] = None,
    ) -> None:
        """Accumulate one engine run's cost for ``name``."""
        if not self.enabled:
            return
        with self._lock:
            profile = self.procedures.get(name)
            if profile is None:
                profile = self.procedures[name] = ProcedureProfile(name)
            profile.engine_seconds += seconds
            profile.runs += 1
            if ssa_size is not None:
                profile.ssa_size = ssa_size
            if visits:
                for key, value in visits.items():
                    profile.visits[key] = profile.visits.get(key, 0) + value
        self.task_seconds.observe(seconds)

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------

    def hot_procedures(self, top: int = 10) -> List[ProcedureProfile]:
        """Procedures ranked by total engine seconds, hottest first."""
        with self._lock:
            ranked = sorted(
                self.procedures.values(),
                key=lambda p: (-p.engine_seconds, p.name),
            )
        return ranked[:top] if top else ranked

    def hot_report(self, top: int = 10) -> str:
        """The hot-procedure table (rank, engine time, runs, SSA size)."""
        rows = self.hot_procedures(top)
        lines = [
            "hot procedures (by engine time):",
            f"  {'#':>2} {'procedure':<24} {'seconds':>10} {'runs':>5} "
            f"{'ssa':>6} {'visits':>8}",
        ]
        if not rows:
            lines.append("  (no engine runs recorded)")
            return "\n".join(lines)
        for rank, profile in enumerate(rows, start=1):
            size = "-" if profile.ssa_size is None else str(profile.ssa_size)
            visits = sum(profile.visits.values())
            lines.append(
                f"  {rank:>2} {profile.name:<24} {profile.engine_seconds:>10.6f} "
                f"{profile.runs:>5} {size:>6} {visits:>8}"
            )
        return "\n".join(lines)

    def phase_report(self) -> str:
        """Per-phase wall/CPU timing table, in recording order."""
        lines = [
            "phase timings:",
            f"  {'phase':<12} {'wall(s)':>10} {'cpu(s)':>10} {'runs':>5}",
        ]
        with self._lock:
            items = list(self.phases.items())
        for name, timing in items:
            lines.append(
                f"  {name:<12} {timing.wall_seconds:>10.6f} "
                f"{timing.cpu_seconds:>10.6f} {timing.count:>5}"
            )
        return "\n".join(lines)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable view (phases + per-procedure totals)."""
        with self._lock:
            return {
                "phases": {
                    name: {
                        "wall_seconds": timing.wall_seconds,
                        "cpu_seconds": timing.cpu_seconds,
                        "count": timing.count,
                    }
                    for name, timing in self.phases.items()
                },
                "procedures": {
                    profile.name: {
                        "engine_seconds": profile.engine_seconds,
                        "runs": profile.runs,
                        "ssa_size": profile.ssa_size,
                        "visits": dict(profile.visits),
                    }
                    for profile in self.procedures.values()
                },
                "task_seconds": self.task_seconds.summary(),
            }


#: Shared disabled profiler.
NULL_PROFILER = Profiler(enabled=False)
