"""``repro-icp top`` — a live terminal dashboard over a serve fleet.

Polls a serving front's ``/healthz`` and ``/metrics`` endpoints (single
daemon or shard router alike, they expose the same surface) and renders
a compact ANSI frame per interval: per-shard request rates, latency
percentiles reconstructed from the exposition's histogram buckets,
in-flight requests, degradations/rejections/timeouts, and supervisor
respawns.

The renderer is a pure function of two consecutive samples (rates are
deltas), so the whole display logic is unit-testable without sockets;
only :func:`fetch_sample` and :func:`run_top` touch the network and the
terminal.
"""

from __future__ import annotations

import json
import math
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.promexport import parse_prometheus_text

#: Socket budget per poll; a front slower than this is reported as down.
FETCH_TIMEOUT_SECONDS = 5.0

_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RED = "\x1b[31m"
_YELLOW = "\x1b[33m"
_GREEN = "\x1b[32m"
_RESET = "\x1b[0m"
_CLEAR = "\x1b[2J\x1b[H"


def fetch_sample(base_url: str, timeout: float = FETCH_TIMEOUT_SECONDS) -> Dict[str, Any]:
    """One poll: healthz JSON + parsed /metrics, wall-clock stamped."""
    base = base_url.rstrip("/")
    with urllib.request.urlopen(f"{base}/v1/healthz", timeout=timeout) as response:
        healthz = json.loads(response.read().decode("utf-8"))
    with urllib.request.urlopen(f"{base}/v1/metrics", timeout=timeout) as response:
        metrics = parse_prometheus_text(response.read().decode("utf-8"))
    return {"ts": time.time(), "healthz": healthz, "metrics": metrics}


# ----------------------------------------------------------------------
# Sample math (pure).
# ----------------------------------------------------------------------


def _value(
    metrics: Dict[Tuple[str, tuple], float],
    name: str,
    labels: Tuple[Tuple[str, str], ...] = (),
) -> float:
    return metrics.get((name, labels), 0.0)


def _rate(prev: Optional[Dict[str, Any]], cur: Dict[str, Any], name: str, labels=()) -> float:
    """Per-second increase of a counter between two samples."""
    if prev is None:
        return 0.0
    dt = cur["ts"] - prev["ts"]
    if dt <= 0:
        return 0.0
    delta = _value(cur["metrics"], name, labels) - _value(
        prev["metrics"], name, labels
    )
    return max(0.0, delta / dt)


def latency_quantile(
    metrics: Dict[Tuple[str, tuple], float],
    q: float,
    labels: Tuple[Tuple[str, str], ...] = (),
) -> float:
    """A latency percentile (ms) from the ``http.latency.*`` buckets.

    Merges the cumulative bucket counts of every endpoint-class histogram
    carrying ``labels`` and interpolates inside the target bucket — the
    standard Prometheus ``histogram_quantile`` estimate.
    """
    buckets: Dict[float, float] = {}
    for (name, sample_labels), value in metrics.items():
        if not name.startswith("repro_http_latency_"):
            continue
        if not name.endswith("_bucket"):
            continue
        pairs = dict(sample_labels)
        le = pairs.pop("le", None)
        if le is None or tuple(sorted(pairs.items())) != tuple(sorted(labels)):
            continue
        bound = math.inf if le in ("+Inf", "inf") else float(le)
        buckets[bound] = buckets.get(bound, 0.0) + value
    if not buckets:
        return 0.0
    ordered = sorted(buckets.items())
    total = ordered[-1][1]
    if total <= 0:
        return 0.0
    target = (q / 100.0) * total
    prev_bound, prev_count = 0.0, 0.0
    for bound, count in ordered:
        if count >= target:
            if math.isinf(bound):
                return prev_bound
            span = count - prev_count
            fraction = (target - prev_count) / span if span > 0 else 1.0
            return prev_bound + (bound - prev_bound) * fraction
        if not math.isinf(bound):
            prev_bound = bound
        prev_count = count
    return prev_bound


def _shard_rows(prev, cur) -> List[Dict[str, Any]]:
    """One row per serving process (the fleet's shards, or the daemon)."""
    healthz = cur["healthz"]
    rows: List[Dict[str, Any]] = []
    shards = healthz.get("shards")
    if not isinstance(shards, list):  # single-process daemon
        labels = ()
        rows.append(
            {
                "name": "daemon",
                "alive": bool(healthz.get("ok")),
                "pid": healthz.get("pid"),
                "programs": healthz.get("programs", 0),
                "respawns": 0,
                "rps": _rate(prev, cur, "repro_http_requests_total", labels),
                "p50": latency_quantile(cur["metrics"], 50.0, labels),
                "p99": latency_quantile(cur["metrics"], 99.0, labels),
                "in_flight": _value(
                    cur["metrics"], "repro_http_in_flight", labels
                ),
            }
        )
        return rows
    for shard in shards:
        index = shard.get("shard")
        labels = (("shard", str(index)),)
        rows.append(
            {
                "name": f"shard-{index}",
                "alive": bool(shard.get("alive")),
                "pid": shard.get("pid"),
                "programs": shard.get("programs", 0),
                "respawns": shard.get("respawns", 0),
                "rps": _rate(prev, cur, "repro_http_requests_total", labels),
                "p50": latency_quantile(cur["metrics"], 50.0, labels),
                "p99": latency_quantile(cur["metrics"], 99.0, labels),
                "in_flight": _value(
                    cur["metrics"], "repro_http_in_flight", labels
                ),
            }
        )
    return rows


def render_frame(
    prev: Optional[Dict[str, Any]],
    cur: Dict[str, Any],
    url: str = "",
    color: bool = True,
) -> str:
    """One dashboard frame from two consecutive samples (prev may be None)."""

    def paint(code: str, text: str) -> str:
        return f"{code}{text}{_RESET}" if color else text

    metrics = cur["metrics"]
    healthz = cur["healthz"]
    ok = bool(healthz.get("ok"))
    # Unlabeled series: the shard aggregate (or everything, single-daemon).
    degraded = _value(metrics, "repro_serve_degraded_total")
    rejected = _value(metrics, "repro_http_status_503_total")
    timeouts = _value(metrics, "repro_http_status_504_total")
    store_hits = _value(metrics, "repro_store_hits_total")
    store_misses = _value(metrics, "repro_store_misses_total")
    rps = _rate(prev, cur, "repro_http_requests_total")

    lines = [
        paint(_BOLD, f"repro-icp top — {url or 'serve fleet'}")
        + "  "
        + (paint(_GREEN, "ok") if ok else paint(_RED, "DEGRADED"))
        + f"  {time.strftime('%H:%M:%S', time.localtime(cur['ts']))}",
        f"fleet: {rps:7.1f} req/s   degraded {degraded:.0f}   "
        f"503 {rejected:.0f}   504 {timeouts:.0f}   "
        f"store {store_hits:.0f}h/{store_misses:.0f}m",
        "",
        paint(
            _DIM,
            f"{'process':<10} {'alive':<6} {'pid':>8} {'progs':>6} "
            f"{'req/s':>8} {'p50ms':>8} {'p99ms':>8} {'infl':>5} {'resp':>5}",
        ),
    ]
    for row in _shard_rows(prev, cur):
        alive = (
            paint(_GREEN, "yes   ") if row["alive"] else paint(_RED, "DEAD  ")
        )
        respawns = row["respawns"]
        resp_cell = (
            paint(_YELLOW, f"{respawns:>5}") if respawns else f"{respawns:>5}"
        )
        lines.append(
            f"{row['name']:<10} {alive} {str(row['pid'] or '-'):>8} "
            f"{row['programs']:>6} {row['rps']:>8.1f} {row['p50']:>8.2f} "
            f"{row['p99']:>8.2f} {row['in_flight']:>5.0f} {resp_cell}"
        )
    return "\n".join(lines)


def run_top(
    url: str,
    interval: float = 2.0,
    frames: int = 0,
    clear: bool = True,
    stream=None,
) -> int:
    """Poll-and-render loop; ``frames == 0`` runs until interrupted."""
    stream = stream or sys.stdout
    color = clear and stream.isatty()
    prev: Optional[Dict[str, Any]] = None
    rendered = 0
    while True:
        try:
            cur = fetch_sample(url)
        except (urllib.error.URLError, OSError, ValueError) as error:
            print(f"top: {url}: {error}", file=sys.stderr)
            return 1
        frame = render_frame(prev, cur, url=url, color=color)
        if clear and stream.isatty():
            stream.write(_CLEAR)
        stream.write(frame + "\n")
        stream.flush()
        prev = cur
        rendered += 1
        if frames and rendered >= frames:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0
