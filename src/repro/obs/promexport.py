"""Prometheus text exposition for :class:`~repro.obs.metrics.MetricsRegistry`.

Renders registry snapshots in the Prometheus text format (version 0.0.4)
for the serve fleet's ``GET /metrics`` endpoints:

- dotted instrument names become underscore metric names under a
  ``repro_`` prefix (``http.latency.report`` → ``repro_http_latency_report``);
- counters gain the conventional ``_total`` suffix;
- histograms render as cumulative ``_bucket{le="..."}`` series plus
  ``_sum``/``_count``, straight from the snapshot's sparse bucket counts;
- one exposition can carry several label-qualified series per metric —
  the shard router renders the fleet aggregate unlabeled, its own
  counters as ``{process="router"}``, and each worker's snapshot as
  ``{shard="N"}``, all under a single ``# TYPE`` header per metric.

:func:`parse_prometheus_text` is the matching reader used by
``repro-icp top``, the loadgen scraper, and the CI smoke assertions; it
round-trips everything :func:`render_prometheus` emits.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Mapping, Tuple

#: Prefix of every exported metric name.
METRIC_PREFIX = "repro_"

#: Content type of the text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: One labeled snapshot: (labels, registry snapshot dict).
LabeledSnapshot = Tuple[Mapping[str, str], Dict[str, Any]]


def metric_name(dotted: str, prefix: str = METRIC_PREFIX) -> str:
    """The exposition name of a dotted instrument name."""
    return prefix + _NAME_RE.sub("_", dotted)


def _render_labels(labels: Mapping[str, str]) -> str:
    parts = [
        '%s="%s"'
        % (
            key,
            str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"),
        )
        for key, value in sorted(labels.items())
    ]
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: Any) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def _bucket_bound(key: str) -> float:
    return float("inf") if key == "overflow" else float(key[3:])


def render_prometheus(
    series: Iterable[LabeledSnapshot], prefix: str = METRIC_PREFIX
) -> str:
    """Render labeled registry snapshots as one text exposition.

    ``series`` is an iterable of ``(labels, snapshot)`` pairs; metric
    names are grouped so every name gets exactly one ``# TYPE`` line no
    matter how many label sets report it.
    """
    pairs = [(dict(labels), snapshot) for labels, snapshot in series]
    counters: Dict[str, List[Tuple[Dict[str, str], Any]]] = {}
    gauges: Dict[str, List[Tuple[Dict[str, str], Any]]] = {}
    histograms: Dict[str, List[Tuple[Dict[str, str], Dict[str, Any]]]] = {}
    for labels, snapshot in pairs:
        if not isinstance(snapshot, dict):
            continue
        for name, value in (snapshot.get("counters") or {}).items():
            counters.setdefault(name, []).append((labels, value))
        for name, value in (snapshot.get("gauges") or {}).items():
            gauges.setdefault(name, []).append((labels, value))
        for name, summary in (snapshot.get("histograms") or {}).items():
            histograms.setdefault(name, []).append((labels, summary))

    lines: List[str] = []
    for name in sorted(counters):
        exported = metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {exported} counter")
        for labels, value in counters[name]:
            lines.append(
                f"{exported}{_render_labels(labels)} {_format_value(value)}"
            )
    for name in sorted(gauges):
        exported = metric_name(name, prefix)
        lines.append(f"# TYPE {exported} gauge")
        for labels, value in gauges[name]:
            lines.append(
                f"{exported}{_render_labels(labels)} {_format_value(value)}"
            )
    for name in sorted(histograms):
        exported = metric_name(name, prefix)
        lines.append(f"# TYPE {exported} histogram")
        for labels, summary in histograms[name]:
            buckets = sorted(
                (summary.get("buckets") or {}).items(),
                key=lambda item: _bucket_bound(item[0]),
            )
            cumulative = 0
            for key, count in buckets:
                if key == "overflow":
                    continue
                cumulative += count
                bucket_labels = dict(labels)
                bucket_labels["le"] = _format_value(_bucket_bound(key))
                lines.append(
                    f"{exported}_bucket{_render_labels(bucket_labels)} "
                    f"{cumulative}"
                )
            inf_labels = dict(labels)
            inf_labels["le"] = "+Inf"
            lines.append(
                f"{exported}_bucket{_render_labels(inf_labels)} "
                f"{summary.get('count', 0)}"
            )
            lines.append(
                f"{exported}_sum{_render_labels(labels)} "
                f"{_format_value(summary.get('sum', 0.0))}"
            )
            lines.append(
                f"{exported}_count{_render_labels(labels)} "
                f"{summary.get('count', 0)}"
            )
    return "\n".join(lines) + "\n" if lines else ""


#: Parsed exposition: {(metric name, sorted label tuple): value}.
ParsedMetrics = Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"')


def parse_prometheus_text(text: str) -> ParsedMetrics:
    """Parse a text exposition into ``{(name, labels): value}``.

    Unparseable lines are skipped (the parser is for our own renderer's
    output plus whatever a healthy Prometheus endpoint serves, not a
    conformance suite).
    """
    parsed: ParsedMetrics = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            continue
        raw = match.group("value")
        try:
            if raw == "+Inf":
                value = float("inf")
            elif raw == "-Inf":
                value = float("-inf")
            else:
                value = float(raw)
        except ValueError:
            continue
        labels = []
        for entry in _LABEL_RE.finditer(match.group("labels") or ""):
            labels.append(
                (
                    entry.group("key"),
                    entry.group("value")
                    .replace('\\"', '"')
                    .replace("\\n", "\n")
                    .replace("\\\\", "\\"),
                )
            )
        parsed[(match.group("name"), tuple(sorted(labels)))] = value
    return parsed


def series_values(
    parsed: ParsedMetrics, name: str
) -> List[Tuple[Dict[str, str], float]]:
    """All (labels, value) samples of one metric name."""
    return [
        (dict(labels), value)
        for (sample, labels), value in sorted(parsed.items())
        if sample == name
    ]


def sample_value(
    parsed: ParsedMetrics,
    name: str,
    labels: Mapping[str, str] = (),
    default: float = 0.0,
) -> float:
    """The value of one exact (name, labels) sample, or ``default``."""
    key = (name, tuple(sorted(dict(labels).items())))
    return parsed.get(key, default)
