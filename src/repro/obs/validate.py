"""Trace-artifact validator: ``python -m repro.obs.validate TRACE.json``.

Exits non-zero (printing each problem) when a Chrome trace is malformed
— missing keys, unknown phases, negative timestamps, unbalanced / badly
nested ``B``/``E`` span events — or when its distributed-tracing links
are broken (a span's ``args.parent`` that resolves to no span, or a
child whose ``args.trace`` disagrees with its parent's).

``--require-links`` additionally fails a trace that contains no
*cross-process* parent link at all: the fleet smoke job uses it to
assert that a request really stitched router → shard → engine spans
across pids, not just that the file parses.  CI runs this over both the
single-process bench trace and the merged fleet trace.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional

from repro.obs.trace import (
    count_cross_process_links,
    validate_trace_file,
)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    require_links = False
    if "--require-links" in argv:
        require_links = True
        argv = [arg for arg in argv if arg != "--require-links"]
    if not argv:
        print(
            "usage: python -m repro.obs.validate [--require-links] "
            "TRACE.json [...]",
            file=sys.stderr,
        )
        return 2
    failures = 0
    for path in argv:
        problems = validate_trace_file(path)
        links = 0
        count = 0
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            count = len(data.get("traceEvents", []))
            links = count_cross_process_links(data)
        except (OSError, ValueError, AttributeError):
            pass
        if require_links and not problems and links == 0:
            problems = ["no cross-process span links (--require-links)"]
        if problems:
            failures += 1
            print(f"{path}: INVALID ({len(problems)} problem(s))")
            for problem in problems:
                print(f"  - {problem}")
        else:
            suffix = (
                f", {links} cross-process link(s)" if links else ""
            )
            print(f"{path}: ok ({count} events{suffix})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
