"""Trace-artifact validator: ``python -m repro.obs.validate TRACE.json``.

Exits non-zero (printing each problem) when the Chrome trace is malformed
— missing keys, unknown phases, negative timestamps, or unbalanced /
badly nested ``B``/``E`` span events.  CI runs this over the trace the
bench smoke job exports, so a regression that breaks the trace format
fails the build rather than silently shipping unreadable artifacts.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional

from repro.obs.trace import validate_trace_file


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.validate TRACE.json [...]", file=sys.stderr)
        return 2
    failures = 0
    for path in argv:
        problems = validate_trace_file(path)
        if problems:
            failures += 1
            print(f"{path}: INVALID ({len(problems)} problem(s))")
            for problem in problems:
                print(f"  - {problem}")
        else:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    count = len(json.load(handle).get("traceEvents", []))
            except (OSError, ValueError):
                count = 0
            print(f"{path}: ok ({count} events)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
