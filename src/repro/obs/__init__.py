"""Analysis-pipeline observability: tracing, metrics, and profiling.

The three instruments are bundled into one :class:`Observability` context
that the pipeline threads through its phases:

- :mod:`repro.obs.trace` — span-based tracer with Chrome ``trace_event``
  export (``--trace OUT.json``) and a human-readable tree;
- :mod:`repro.obs.metrics` — unified registry of counters, gauges, and
  histograms, snapshottable to JSON (``--metrics-json OUT.json``);
- :mod:`repro.obs.profile` — per-phase wall/CPU timings and the
  hot-procedure report (``--profile``).

Everything is disabled by default: :data:`NULL_OBS` carries the no-op
singleton of each instrument, so the instrumented hot paths cost a
truthiness check and nothing else when observability is off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.profile import NULL_PROFILER, Profiler
from repro.obs.trace import (
    NULL_TRACER,
    Tracer,
    validate_chrome_trace,
    validate_trace_file,
)

__all__ = [
    "Observability",
    "NULL_OBS",
    "Tracer",
    "MetricsRegistry",
    "Profiler",
    "validate_chrome_trace",
    "validate_trace_file",
]


@dataclass(frozen=True)
class Observability:
    """One run's observability context (tracer + metrics + profiler)."""

    tracer: Tracer = NULL_TRACER
    metrics: MetricsRegistry = NULL_REGISTRY
    profiler: Profiler = NULL_PROFILER

    @property
    def enabled(self) -> bool:
        """True when at least one instrument records anything."""
        return (
            self.tracer.enabled
            or self.metrics.enabled
            or self.profiler.enabled
        )

    @classmethod
    def create(
        cls,
        trace: bool = False,
        metrics: bool = False,
        profile: bool = False,
    ) -> "Observability":
        """An observability context with the requested instruments live."""
        return cls(
            tracer=Tracer() if trace else NULL_TRACER,
            metrics=MetricsRegistry() if metrics else NULL_REGISTRY,
            profiler=Profiler() if profile else NULL_PROFILER,
        )


#: The shared all-off context (safe to use unconditionally).
NULL_OBS = Observability()
