"""Analysis-pipeline observability: tracing, metrics, and profiling.

The three instruments are bundled into one :class:`Observability` context
that the pipeline threads through its phases:

- :mod:`repro.obs.trace` — span-based tracer with Chrome ``trace_event``
  export (``--trace OUT.json``) and a human-readable tree;
- :mod:`repro.obs.metrics` — unified registry of counters, gauges, and
  histograms, snapshottable to JSON (``--metrics-json OUT.json``);
- :mod:`repro.obs.profile` — per-phase wall/CPU timings and the
  hot-procedure report (``--profile``).

Around them, the fleet-facing pieces: :mod:`repro.obs.log` (structured
JSON-lines request logging with a ``/debug/last`` ring),
:mod:`repro.obs.promexport` (Prometheus text exposition of registry
snapshots for ``GET /metrics``), and :mod:`repro.obs.top` (the
``repro-icp top`` live fleet dashboard).

Everything is disabled by default: :data:`NULL_OBS` carries the no-op
singleton of each instrument, so the instrumented hot paths cost a
truthiness check and nothing else when observability is off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.log import NULL_LOG, StructuredLog
from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    merge_snapshots,
    merge_summaries,
    summary_quantile,
)
from repro.obs.profile import NULL_PROFILER, Profiler
from repro.obs.promexport import parse_prometheus_text, render_prometheus
from repro.obs.trace import (
    NULL_TRACER,
    Tracer,
    count_cross_process_links,
    validate_chrome_trace,
    validate_trace_file,
    validate_trace_links,
)

__all__ = [
    "Observability",
    "NULL_OBS",
    "NULL_LOG",
    "StructuredLog",
    "Tracer",
    "MetricsRegistry",
    "Profiler",
    "merge_snapshots",
    "merge_summaries",
    "summary_quantile",
    "parse_prometheus_text",
    "render_prometheus",
    "count_cross_process_links",
    "validate_chrome_trace",
    "validate_trace_file",
    "validate_trace_links",
]


@dataclass(frozen=True)
class Observability:
    """One run's observability context (tracer + metrics + profiler)."""

    tracer: Tracer = NULL_TRACER
    metrics: MetricsRegistry = NULL_REGISTRY
    profiler: Profiler = NULL_PROFILER

    @property
    def enabled(self) -> bool:
        """True when at least one instrument records anything."""
        return (
            self.tracer.enabled
            or self.metrics.enabled
            or self.profiler.enabled
        )

    @classmethod
    def create(
        cls,
        trace: bool = False,
        metrics: bool = False,
        profile: bool = False,
    ) -> "Observability":
        """An observability context with the requested instruments live."""
        return cls(
            tracer=Tracer() if trace else NULL_TRACER,
            metrics=MetricsRegistry() if metrics else NULL_REGISTRY,
            profiler=Profiler() if profile else NULL_PROFILER,
        )


#: The shared all-off context (safe to use unconditionally).
NULL_OBS = Observability()
