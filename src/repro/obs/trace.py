"""Span-based structured tracing for the analysis pipeline.

A :class:`Tracer` records nested *spans* (parse → SSA → summaries →
wavefront level → per-procedure engine run → transform) carrying structured
attributes — procedure name, level index, cache hit/miss, lattice-cell
counts.  Spans are buffered per thread: every worker thread of a thread
pool appends to its own buffer (no locking on the hot path), and the
coordinator merges all buffers at export time, one Chrome ``tid`` track per
buffer.  Process-pool workers live in a different clock domain, so their
engine runs are synthesized on the coordinator as *complete* events from
the worker-measured durations.

Two export formats:

- :meth:`Tracer.to_chrome` — the Chrome ``trace_event`` JSON format
  (load the file in ``chrome://tracing`` or Perfetto).  Spans become
  balanced ``B``/``E`` event pairs; synthesized worker spans and marker
  events use ``X``/``i`` phases.
- :meth:`Tracer.format_tree` — a human-readable indented tree with
  durations, for terminals.

The disabled tracer is a no-op singleton: ``span()`` returns a cached
null context manager, so a pipeline run with tracing off performs no
allocation and no buffering.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: The synthetic process id used for all pipeline events.
TRACE_PID = 1

#: Buffer label of the coordinating (pipeline) thread.
COORDINATOR_TID = "coordinator"


class _NullSpan:
    """Reusable no-op context manager returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span: records a ``B`` event on enter, ``E`` on exit."""

    __slots__ = ("_tracer", "_buffer", "name", "cat", "args")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: Dict[str, Any]):
        self._tracer = tracer
        self._buffer = tracer._thread_buffer()
        self.name = name
        self.cat = cat
        self.args = args

    def set(self, **attrs) -> None:
        """Attach attributes discovered while the span is open."""
        self.args.update(attrs)

    def __enter__(self) -> "_Span":
        self._buffer.append(
            {
                "name": self.name,
                "cat": self.cat,
                "ph": "B",
                "ts": self._tracer._now(),
                "pid": TRACE_PID,
                "args": self.args,
            }
        )
        return self

    def __exit__(self, *exc_info) -> None:
        self._buffer.append(
            {
                "name": self.name,
                "cat": self.cat,
                "ph": "E",
                "ts": self._tracer._now(),
                "pid": TRACE_PID,
            }
        )


class Tracer:
    """Collects trace events from the coordinator and its worker threads."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._epoch = time.perf_counter()
        #: Wall-clock instant of the epoch; lets a coordinator rebase
        #: another process's events onto its own timeline when merging
        #: per-shard traces into one fleet export.
        self.epoch_wall = time.time()
        self._lock = threading.Lock()
        #: (label, events) per registered buffer, in registration order.
        self._buffers: List[Tuple[str, List[dict]]] = []
        self._labels_seen: Dict[str, int] = {}
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------

    def _now(self) -> float:
        """Microseconds since this tracer's epoch (Chrome's ``ts`` unit)."""
        return (time.perf_counter() - self._epoch) * 1_000_000.0

    def _thread_buffer(self) -> List[dict]:
        buffer = getattr(self._local, "events", None)
        if buffer is None:
            buffer = []
            self._local.events = buffer
            thread = threading.current_thread()
            label = (
                COORDINATOR_TID
                if thread is threading.main_thread()
                else thread.name
            )
            with self._lock:
                # Keep tids unique so per-track nesting stays well-formed
                # even if two threads ever share a name.
                count = self._labels_seen.get(label, 0)
                self._labels_seen[label] = count + 1
                if count:
                    label = f"{label}#{count}"
                self._buffers.append((label, buffer))
        return buffer

    # ------------------------------------------------------------------
    # Per-thread attribute binding (request identity propagation).
    # ------------------------------------------------------------------

    def bind(self, **attrs) -> None:
        """Stamp every span/instant this thread records with ``attrs``.

        The serve fleet binds ``trace``/``request_id`` around request
        handling, so engine-phase spans recorded deep inside the pipeline
        carry the request's trace id without the pipeline knowing about
        HTTP.  Explicit span attributes win over bound ones.
        """
        if self.enabled:
            self._local.bound = attrs or None

    def unbind(self) -> None:
        """Drop this thread's bound attributes."""
        if self.enabled:
            self._local.bound = None

    def bound(self) -> Optional[Dict[str, Any]]:
        """This thread's bound attributes (None when nothing is bound)."""
        if not self.enabled:
            return None
        return getattr(self._local, "bound", None)

    def span(self, name: str, cat: str = "pipeline", **attrs):
        """A context manager recording one nested span.

        Attributes are arbitrary JSON-serializable values; they land in the
        Chrome event's ``args`` and in the tree rendering.
        """
        if not self.enabled:
            return _NULL_SPAN
        bound = getattr(self._local, "bound", None)
        if bound:
            attrs = {**bound, **attrs}
        return _Span(self, name, cat, attrs)

    def instant(self, name: str, cat: str = "pipeline", **attrs) -> None:
        """A zero-duration marker event (e.g. a cache hit)."""
        if not self.enabled:
            return
        bound = getattr(self._local, "bound", None)
        if bound:
            attrs = {**bound, **attrs}
        self._thread_buffer().append(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "s": "t",
                "ts": self._now(),
                "pid": TRACE_PID,
                "args": attrs,
            }
        )

    def complete(
        self,
        name: str,
        start_ts: float,
        duration_seconds: float,
        tid: str,
        cat: str = "engine",
        **attrs,
    ) -> None:
        """Record a *complete* (``X``) event on a virtual track.

        Used for work measured in another clock domain (process-pool
        workers): the coordinator rebases the worker-reported duration onto
        its own timeline at ``start_ts`` (microseconds, tracer epoch).
        """
        if not self.enabled:
            return
        with self._lock:
            buffer = self._named_buffer_locked(tid)
        buffer.append(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": start_ts,
                "dur": duration_seconds * 1_000_000.0,
                "pid": TRACE_PID,
                "args": attrs,
            }
        )

    def _named_buffer_locked(self, label: str) -> List[dict]:
        for existing, buffer in self._buffers:
            if existing == label:
                return buffer
        buffer: List[dict] = []
        self._buffers.append((label, buffer))
        self._labels_seen.setdefault(label, 1)
        return buffer

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------

    def events(self) -> List[dict]:
        """All recorded events, each stamped with its buffer's ``tid``."""
        merged: List[dict] = []
        with self._lock:
            buffers = list(self._buffers)
        for label, buffer in buffers:
            for event in buffer:
                stamped = dict(event)
                stamped["tid"] = label
                merged.append(stamped)
        return merged

    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome ``trace_event`` JSON object format."""
        return {
            "traceEvents": self.events(),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro-icp"},
        }

    def write(self, path: str) -> None:
        """Serialize the Chrome trace to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle, indent=1)
            handle.write("\n")

    def format_tree(self) -> str:
        """Human-readable span tree, one section per thread track."""
        lines: List[str] = []
        with self._lock:
            buffers = list(self._buffers)
        for label, buffer in buffers:
            lines.append(f"[{label}]")
            stack: List[Tuple[dict, int]] = []
            for event in buffer:
                if event["ph"] == "B":
                    stack.append((event, len(stack)))
                elif event["ph"] == "E" and stack:
                    begin, depth = stack.pop()
                    duration_ms = (event["ts"] - begin["ts"]) / 1000.0
                    lines.append(
                        _tree_line(begin, depth, f"{duration_ms:.3f}ms")
                    )
                elif event["ph"] == "X":
                    lines.append(
                        _tree_line(event, len(stack), f"{event['dur'] / 1000.0:.3f}ms")
                    )
                elif event["ph"] == "i":
                    lines.append(_tree_line(event, len(stack), "·"))
        return "\n".join(lines)


def _tree_line(event: dict, depth: int, suffix: str) -> str:
    args = event.get("args") or {}
    rendered = (
        " {" + ", ".join(f"{k}={v!r}" for k, v in args.items()) + "}"
        if args
        else ""
    )
    return f"{'  ' * (depth + 1)}{event['name']}{rendered} [{suffix}]"


#: Shared disabled tracer (no buffers, no allocation per span).
NULL_TRACER = Tracer(enabled=False)


# ----------------------------------------------------------------------
# Validation (bundled; also invoked by CI on the exported artifact).
# ----------------------------------------------------------------------

_REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")
_KNOWN_PHASES = {"B", "E", "X", "i", "M"}


def validate_chrome_trace(data: Any) -> List[str]:
    """Check a parsed Chrome trace for structural validity.

    Returns a list of problems (empty when the trace is well-formed):

    - the top level must be an object with a ``traceEvents`` list;
    - every event needs ``name``/``ph``/``ts``/``pid``/``tid`` and a
      known phase;
    - timestamps and durations must be non-negative numbers;
    - per ``(pid, tid)`` track, ``B``/``E`` events must balance and nest —
      each ``E`` closes the most recent open ``B`` of the same name.
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["top level is not a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]

    stacks: Dict[Tuple[Any, Any], List[dict]] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event #{index} is not an object")
            continue
        missing = [key for key in _REQUIRED_KEYS if key not in event]
        if missing:
            problems.append(f"event #{index} missing keys: {missing}")
            continue
        phase = event["ph"]
        if phase not in _KNOWN_PHASES:
            problems.append(f"event #{index} has unknown phase {phase!r}")
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event #{index} has invalid ts {ts!r}")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(f"event #{index} has invalid dur {duration!r}")
        track = (event["pid"], event["tid"])
        stack = stacks.setdefault(track, [])
        if phase == "B":
            stack.append(event)
        elif phase == "E":
            if not stack:
                problems.append(
                    f"event #{index} ('{event['name']}' on {track}): "
                    "E without matching B"
                )
            else:
                begin = stack.pop()
                if begin["name"] != event["name"]:
                    problems.append(
                        f"event #{index}: E '{event['name']}' closes "
                        f"B '{begin['name']}' on {track} (bad nesting)"
                    )
                elif event["ts"] < begin["ts"]:
                    problems.append(
                        f"event #{index}: span '{event['name']}' on {track} "
                        "ends before it begins"
                    )
    for track, stack in stacks.items():
        for begin in stack:
            problems.append(
                f"unclosed B '{begin['name']}' on {track}"
            )
    return problems


def validate_trace_links(data: Any) -> List[str]:
    """Check the cross-process span links of a (possibly merged) trace.

    Spans participating in distributed request tracing carry link
    attributes in ``args``: ``span`` (this span's id), ``parent`` (the
    upstream span's id), and ``trace`` (the request's trace id).  The
    checks:

    - every ``parent`` must resolve to some event whose ``args.span``
      matches — a dangling parent means a broken stitch;
    - a linked child and its parent must agree on ``trace``;
    - duplicate ``span`` ids are flagged (links would be ambiguous).

    Traces without link attributes validate vacuously; use
    :func:`count_cross_process_links` to assert a fleet trace actually
    stitched across pids.
    """
    problems: List[str] = []
    if not isinstance(data, dict) or not isinstance(
        data.get("traceEvents"), list
    ):
        return ["top level is not a trace object with 'traceEvents'"]
    by_span: Dict[str, dict] = {}
    for index, event in enumerate(data["traceEvents"]):
        if not isinstance(event, dict):
            continue
        args = event.get("args")
        if not isinstance(args, dict):
            continue
        span_id = args.get("span")
        if span_id is None:
            continue
        if span_id in by_span:
            problems.append(f"duplicate span id {span_id!r} (event #{index})")
        else:
            by_span[span_id] = event
    for index, event in enumerate(data["traceEvents"]):
        if not isinstance(event, dict):
            continue
        args = event.get("args")
        if not isinstance(args, dict):
            continue
        parent_id = args.get("parent")
        if parent_id is None:
            continue
        parent = by_span.get(parent_id)
        if parent is None:
            problems.append(
                f"event #{index} ('{event.get('name')}'): parent span "
                f"{parent_id!r} does not exist in the trace"
            )
            continue
        child_trace = args.get("trace")
        parent_trace = (parent.get("args") or {}).get("trace")
        if child_trace != parent_trace:
            problems.append(
                f"event #{index} ('{event.get('name')}'): trace id "
                f"{child_trace!r} does not match parent's {parent_trace!r}"
            )
    return problems


def count_cross_process_links(data: Any) -> int:
    """Resolved parent links whose two spans live in different pids."""
    if not isinstance(data, dict) or not isinstance(
        data.get("traceEvents"), list
    ):
        return 0
    by_span: Dict[str, dict] = {}
    for event in data["traceEvents"]:
        if isinstance(event, dict) and isinstance(event.get("args"), dict):
            span_id = event["args"].get("span")
            if span_id is not None and span_id not in by_span:
                by_span[span_id] = event
    links = 0
    for event in data["traceEvents"]:
        if not (isinstance(event, dict) and isinstance(event.get("args"), dict)):
            continue
        parent = by_span.get(event["args"].get("parent"))
        if parent is not None and parent.get("pid") != event.get("pid"):
            links += 1
    return links


def validate_trace_file(path: str) -> List[str]:
    """Load ``path`` and validate it; JSON errors become problems too."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"cannot load trace: {error}"]
    return validate_chrome_trace(data) + validate_trace_links(data)
