"""Structured JSON-lines logging for the serve fleet.

One :class:`StructuredLog` per serving process replaces the silenced
``BaseHTTPRequestHandler.log_message``: every request becomes one JSON
object on stderr — timestamp, level, request id, shard, method, path,
status, latency, degradation flag — machine-parseable and greppable,
never an unstructured access-log line.

Behaviors:

- **Slow-request escalation.**  A request slower than the configured
  threshold (``serve_log_slow_ms``) logs at ``warning`` with
  ``"slow": true``, so a plain severity filter surfaces tail latency.
- **Bounded ring.**  The last ``serve_log_ring`` entries stay in memory
  and are served at ``GET /debug/last`` — the first stop when a fleet
  misbehaves and nobody was tailing stderr.
- **Zero-cost when off.**  :data:`NULL_LOG` short-circuits before
  building the entry dict; ``--quiet`` (``serve_log_enabled = false``)
  restores the old silence exactly.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

#: Default slow-request threshold, milliseconds.
DEFAULT_SLOW_MS = 500.0

#: Default bound of the in-memory ring behind ``GET /debug/last``.
DEFAULT_RING = 256


class StructuredLog:
    """A thread-safe JSON-lines logger with a bounded in-memory ring."""

    def __init__(
        self,
        enabled: bool = True,
        stream=None,
        slow_ms: float = DEFAULT_SLOW_MS,
        ring: int = DEFAULT_RING,
        shard: Optional[Any] = None,
    ):
        self.enabled = enabled
        #: None resolves to ``sys.stderr`` at emit time, so pytest's
        #: capture and late redirection both see the lines.
        self._stream = stream
        self.slow_ms = slow_ms
        self.shard = shard
        self._ring: "deque[Dict[str, Any]]" = deque(maxlen=max(1, int(ring)))
        self._lock = threading.Lock()

    def log(self, level: str, event: str, **fields) -> Optional[Dict[str, Any]]:
        """Emit one JSON line; returns the entry dict (None when off)."""
        if not self.enabled:
            return None
        entry: Dict[str, Any] = {"ts": time.time(), "level": level, "event": event}
        if self.shard is not None and "shard" not in fields:
            entry["shard"] = self.shard
        entry.update(fields)
        line = json.dumps(entry, sort_keys=True, default=str)
        stream = self._stream if self._stream is not None else sys.stderr
        with self._lock:
            self._ring.append(entry)
            try:
                stream.write(line + "\n")
                stream.flush()
            except (OSError, ValueError):
                pass  # a closed/redirected stderr must never kill a request
        return entry

    def access(
        self,
        *,
        method: str,
        path: str,
        status: int,
        latency_ms: float,
        request_id: Optional[str] = None,
        shard: Optional[Any] = None,
        degraded: bool = False,
        **fields,
    ) -> Optional[Dict[str, Any]]:
        """The per-request access-log line (one per served request)."""
        if not self.enabled:
            return None
        slow = latency_ms >= self.slow_ms
        level = "warning" if slow or status >= 500 else "info"
        return self.log(
            level,
            "http.request",
            request_id=request_id,
            shard=shard if shard is not None else self.shard,
            method=method,
            path=path,
            status=status,
            latency_ms=round(latency_ms, 3),
            degraded=degraded,
            slow=slow,
            **fields,
        )

    def last(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent entries, oldest first (the ``/debug/last`` body)."""
        with self._lock:
            entries = list(self._ring)
        return entries[-limit:] if limit else entries


#: Shared disabled logger (no entries, no ring, no output).
NULL_LOG = StructuredLog(enabled=False, ring=1)
