"""Finding suppression: per-line ``noqa`` directives and the baseline file.

Two orthogonal mechanisms quiet a finding without fixing it:

- **Per-line**: a comment containing ``noqa`` on the finding's line.  Bare
  ``noqa`` silences every rule there; ``noqa: ICP003`` (comma-separated for
  several) silences only the listed rules.  MiniF uses ``#`` comments,
  F77 uses ``!`` or column-1 ``C``/``c``/``*`` comments — both lexers hand
  their comment streams to :func:`source_suppressions`.
- **Repo baseline**: ``.icplint-baseline.json`` records fingerprints of
  accepted findings so CI gates on *new* findings only.  Fingerprints hash
  (rule, procedure, message) — no line numbers — so a baselined finding
  survives unrelated edits that shift lines.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.diag.findings import Finding

#: ``noqa`` with an optional ``: ICP001, ICP002`` code list.  Case-insensitive,
#: anywhere inside the comment text.
_NOQA_RE = re.compile(
    r"\bnoqa\b\s*(?::\s*(?P<codes>[A-Za-z]+[0-9]+(?:\s*,\s*[A-Za-z]+[0-9]+)*))?",
    re.IGNORECASE,
)

#: line -> None (suppress all rules) or the frozenset of suppressed rule IDs.
SuppressionTable = Dict[int, Optional[FrozenSet[str]]]

BASELINE_SCHEMA = "repro-icp/lint-baseline/v1"
BASELINE_FILENAME = ".icplint-baseline.json"


def suppressions_from_comments(
    comments: Iterable[Tuple[int, str]]
) -> SuppressionTable:
    """Fold a lexer's ``(line, text)`` comment stream into a suppression table."""
    table: SuppressionTable = {}
    for line, text in comments:
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            table[line] = None
            continue
        ids = frozenset(
            code.strip().upper() for code in codes.split(",") if code.strip()
        )
        existing = table.get(line, frozenset())
        if existing is None:
            continue  # a bare noqa on this line already suppresses everything
        table[line] = existing | ids
    return table


def source_suppressions(source: str, fortran: bool = False) -> SuppressionTable:
    """Scan MiniF (``#``) or F77 (``!``/column-1) comments for ``noqa``."""
    if fortran:
        from repro.lang.fortran import scan_comments
    else:
        from repro.lang.lexer import scan_comments
    return suppressions_from_comments(scan_comments(source))


_MISSING = object()


def apply_suppressions(
    findings: Iterable[Finding], table: SuppressionTable
) -> Tuple[List[Finding], int]:
    """Drop findings whose line carries a matching ``noqa``.

    Returns ``(kept, suppressed_count)``.  Findings with no position
    (line 0) can never be suppressed per-line — use the baseline for those.
    """
    if not table:
        return list(findings), 0
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        codes = table.get(finding.line, _MISSING)
        if codes is not _MISSING and finding.line:
            if codes is None or finding.rule_id in codes:
                suppressed += 1
                continue
        kept.append(finding)
    return kept, suppressed


# ----------------------------------------------------------------------
# Baseline file.
# ----------------------------------------------------------------------

def load_baseline(path: Union[str, Path]) -> FrozenSet[str]:
    """Fingerprints recorded in a baseline file (empty if the file is absent)."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return frozenset()
    data = json.loads(baseline_path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{baseline_path}: not a {BASELINE_SCHEMA} baseline file"
        )
    return frozenset(
        entry["fingerprint"] for entry in data.get("findings", [])
    )


def write_baseline(path: Union[str, Path], findings: Iterable[Finding]) -> int:
    """Write a baseline accepting ``findings``; returns the entry count.

    Entries keep the human-readable (rule, proc, message) next to each
    fingerprint so baseline diffs review like code.
    """
    entries = {
        finding.fingerprint: {
            "fingerprint": finding.fingerprint,
            "rule": finding.rule_id,
            "proc": finding.proc,
            "message": finding.message,
        }
        for finding in findings
    }
    payload = {
        "schema": BASELINE_SCHEMA,
        "findings": [entries[key] for key in sorted(entries)],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)


def apply_baseline(
    findings: Iterable[Finding], fingerprints: FrozenSet[str]
) -> Tuple[List[Finding], int]:
    """Drop findings whose fingerprint the baseline accepts."""
    if not fingerprints:
        return list(findings), 0
    kept: List[Finding] = []
    baselined = 0
    for finding in findings:
        if finding.fingerprint in fingerprints:
            baselined += 1
        else:
            kept.append(finding)
    return kept, baselined
