"""The six interprocedural checks (ICP001–ICP006).

Each check is a pure function from a :class:`~repro.core.driver.PipelineResult`
(or, for the structural scan, just the parsed program) to a list of
:class:`~repro.diag.findings.Finding`.  They compute nothing of their own:
every fact comes from a pipeline artifact the paper's Figure 2 already
produced — USE sets, MOD/REF, alias pairs, the FS SCC solution, the PCG.

Two invariants every check obeys:

- messages carry **no line numbers** (the baseline fingerprints on the
  message text, so findings must survive line drift);
- array names never feed value-based rules (element stores and reads are
  may-effects on the whole array — the paper's stated limitation).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.analysis.liveness import dead_assignments, upward_exposed
from repro.diag.findings import RULES, Finding
from repro.ir.builder import build_cfg
from repro.ir.cfg import Branch, CFG, CallInstr
from repro.ir.ssa import instr_use_vars
from repro.lang import ast
from repro.lang.symbols import CallSite, ProcedureSymbols
from repro.summary.use import bound_call_uses

# Typing only; avoid a hard import cycle with the driver package.
PipelineResult = "repro.core.driver.PipelineResult"


def _call_uses_fn(result) -> Callable[[CallSite], Set[str]]:
    globals_set = frozenset(result.program.global_names)

    def call_uses(site: CallSite) -> Set[str]:
        return bound_call_uses(
            site, result.symbols, result.modref, result.use, globals_set
        )

    return call_uses


# ----------------------------------------------------------------------
# ICP001 — use before initialization through calls (program entry).
# ----------------------------------------------------------------------

def check_use_before_init(result) -> List[Finding]:
    """Variables the entry procedure may read before any path writes them.

    Upward-exposed uses of the entry procedure, computed with call read
    effects bound from USE summaries and — unlike the USE computation —
    call MOD sets credited as *kills*: a variable some call surely-or-maybe
    writes is given the benefit of the doubt, so only variables no path
    (through any call) initializes remain.  Formals of the entry procedure
    are caller-supplied, initialized globals are initialized, and arrays are
    exempt (element granularity is beyond the paper's model).
    """
    entry = result.pcg.entry
    proc_map = result.program.procedure_map()
    if entry not in proc_map or entry not in result.symbols:
        return []
    proc = proc_map[entry]
    symbols = result.symbols[entry]
    globals_set = frozenset(result.program.global_names)
    initialized = set(result.program.initial_globals())

    call_uses = _call_uses_fn(result)
    build = build_cfg(proc, symbols)
    exposed = upward_exposed(
        build.cfg, call_uses, call_kills=result.modref.callsite_mod
    )

    findings: List[Finding] = []
    for name in sorted(exposed):
        if name in symbols.formal_set or name in symbols.array_names:
            continue
        if name in globals_set and name in initialized:
            continue
        kind = "global" if name in globals_set else "local"
        stmt, via = _first_read(build.cfg, name, call_uses)
        if via:
            message = (
                f"{kind} '{name}' may be read (via the call to '{via}') "
                f"before any path from '{entry}' initializes it"
            )
        else:
            message = (
                f"{kind} '{name}' may be read before any path from "
                f"'{entry}' initializes it"
            )
        findings.append(
            Finding.at(
                RULES["ICP001"],
                message,
                proc=entry,
                pos=stmt.pos if stmt is not None else proc.pos,
            )
        )
    return findings


def _first_read(
    cfg: CFG, name: str, call_uses: Callable[[CallSite], Set[str]]
) -> Tuple[Optional[ast.Stmt], Optional[str]]:
    """First statement (in RPO, skipping block-local killed reads) reading
    ``name``; returns ``(stmt, callee-or-None)`` as a position hint."""
    for block_id in cfg.reachable_ids():
        block = cfg.blocks[block_id]
        killed = False
        for instr in block.instrs:
            if isinstance(instr, CallInstr):
                if name in call_uses(instr.site):
                    return instr.stmt, instr.site.callee
                if instr.target == name:
                    killed = True
            else:
                if name in instr_use_vars(instr):
                    return instr.stmt, None
                if getattr(instr, "target", None) == name:
                    killed = True
            if killed:
                break
        if killed:
            continue
        term = block.terminator
        if term is not None and name in instr_use_vars(term):
            return getattr(term, "stmt", None), None
    return None, None


# ----------------------------------------------------------------------
# ICP002 — Fortran argument-aliasing violations.
# ----------------------------------------------------------------------

def check_aliasing(result, proc: str) -> List[Finding]:
    """Aliased actuals (or a global actual) with a modified counterpart.

    Fortran leaves a call undefined when two dummy arguments are associated
    with the same datum (or a dummy with a visible global) and the callee
    stores through either.  Detected from the propagated alias pairs
    (``summary/alias``) and the alias-closed MOD sets (``summary/modref``).
    """
    if proc not in result.symbols:
        return []
    symbols = result.symbols[proc]
    globals_set = frozenset(result.program.global_names)
    aliases = result.aliases
    modref = result.modref
    rule = RULES["ICP002"]

    findings: List[Finding] = []
    for site in symbols.call_sites:
        callee = site.callee
        if callee not in result.symbols:
            continue
        formals = result.symbols[callee].formals
        if len(formals) != len(site.args):
            continue  # arity mismatch is ICP005's report
        bare = [
            (i, arg.name)
            for i, arg in enumerate(site.args)
            if isinstance(arg, ast.Var)
        ]
        pos = site.stmt.pos
        seen: Set[str] = set()

        # Two actuals naming (or may-aliasing) the same datum.
        for x in range(len(bare)):
            i, name_a = bare[x]
            for y in range(x + 1, len(bare)):
                j, name_b = bare[y]
                if name_a != name_b and not aliases.may_alias(proc, name_a, name_b):
                    continue
                modified = sorted(
                    {
                        formals[k]
                        for k in (i, j)
                        if modref.formal_modified(callee, formals[k])
                    }
                )
                if not modified:
                    continue
                what = (
                    f"'{name_a}' twice"
                    if name_a == name_b
                    else f"aliased '{name_a}' and '{name_b}'"
                )
                mods = " and ".join(f"'{f}'" for f in modified)
                noun = "formals" if len(modified) > 1 else "formal"
                message = (
                    f"call to '{callee}' passes {what} (arguments "
                    f"{i + 1} and {j + 1}) while '{callee}' may modify "
                    f"{noun} {mods}"
                )
                if message not in seen:
                    seen.add(message)
                    findings.append(
                        Finding.at(rule, message, proc=proc, pos=pos)
                    )

        # An actual aliasing a global the callee also touches.
        callee_visible = modref.mod_of(callee) | modref.ref_of(callee)
        for i, name in bare:
            global_partners = {
                g
                for g in aliases.partners(proc, name) | {name}
                if g in globals_set
            }
            for g in sorted(global_partners):
                if g not in callee_visible:
                    continue
                formal = formals[i]
                hazard = modref.formal_modified(callee, formal) or (
                    g in modref.mod_globals(callee)
                )
                if not hazard:
                    continue
                message = (
                    f"call to '{callee}' passes '{name}' (argument {i + 1}), "
                    f"which may alias global '{g}' that '{callee}' also "
                    f"accesses, and one of the pair may be modified"
                )
                if message not in seen:
                    seen.add(message)
                    findings.append(
                        Finding.at(rule, message, proc=proc, pos=pos)
                    )
    return findings


# ----------------------------------------------------------------------
# ICP003 — dead stores.
# ----------------------------------------------------------------------

def check_dead_stores(result, proc: str) -> List[Finding]:
    """Scalar assignments whose value no execution can read.

    Backward liveness at instruction granularity; call read effects come
    from the interprocedural USE summaries, formals and globals stay live
    at exits of non-entry procedures (callers may observe them through
    reference binding), and alias partners keep a store live.
    """
    proc_map = result.program.procedure_map()
    if proc not in proc_map or proc not in result.symbols:
        return []
    symbols = result.symbols[proc]
    globals_set = frozenset(result.program.global_names)
    build = build_cfg(proc_map[proc], symbols)

    if proc == result.pcg.entry:
        exit_live: Set[str] = set()
    else:
        exit_live = set(symbols.formals) | set(globals_set)

    def partners(name: str) -> Set[str]:
        return result.aliases.partners(proc, name)

    dead = dead_assignments(build.cfg, _call_uses_fn(result), exit_live, partners)
    rule = RULES["ICP003"]
    findings: List[Finding] = []
    for instr in dead:
        findings.append(
            Finding.at(
                rule,
                f"value assigned to '{instr.target}' is never read",
                proc=proc,
                pos=instr.stmt.pos if instr.stmt is not None else None,
            )
        )
    return findings


# ----------------------------------------------------------------------
# ICP004 — unreachable code / decided branches under propagated constants.
# ----------------------------------------------------------------------

def check_reachability(result, proc: str) -> List[Finding]:
    """Blocks the FS SCC solution never reached, branches it decided.

    Reads ``reached_blocks``/``executable_edges`` straight from the SCC
    engine detail — the paper's Figure 1 precision surfaced as a lint.  The
    simple engine records no detail; the check then reports nothing for the
    procedure rather than guessing.
    """
    intra = result.fs.intra.get(proc)
    if intra is None or proc not in result.fs.fs_reachable:
        return []
    detail = intra.detail
    if detail is None or not hasattr(detail, "reached_blocks"):
        return []
    cfg: CFG = detail.build.cfg
    reached: Set[int] = detail.reached_blocks
    edges = detail.executable_edges
    rule = RULES["ICP004"]
    findings: List[Finding] = []

    cfg_reachable = cfg.reachable_ids()
    seen_positions: Set[Tuple[int, int]] = set()

    def report(message: str, pos) -> None:
        if pos is not None:
            key = (pos.line, pos.column)
            if key in seen_positions:
                return
            seen_positions.add(key)
        findings.append(Finding.at(rule, message, proc=proc, pos=pos))

    # Structurally dead code (no control-flow path; e.g. after a return).
    reachable_set = set(cfg_reachable)
    for block in cfg.blocks:
        if block.id in reachable_set:
            continue
        pos = _block_pos(block)
        if pos is not None:
            report(
                "statement is unreachable (no control-flow path from "
                "procedure entry)",
                pos,
            )

    # Blocks the constant propagator proved dead.
    for block_id in cfg_reachable:
        if block_id in reached:
            continue
        pos = _block_pos(cfg.blocks[block_id])
        if pos is not None:
            report(
                "statement is unreachable under interprocedurally "
                "propagated constants",
                pos,
            )

    # Reached two-way branches with exactly one executable outgoing edge.
    for block_id in sorted(reached):
        if block_id >= len(cfg.blocks):
            continue
        term = cfg.blocks[block_id].terminator
        if not isinstance(term, Branch) or term.true_target == term.false_target:
            continue
        true_on = (block_id, term.true_target) in edges
        false_on = (block_id, term.false_target) in edges
        if true_on == false_on:
            continue
        direction = "true" if true_on else "false"
        stmt = getattr(term, "stmt", None)
        report(
            f"branch condition is always {direction} under "
            "interprocedurally propagated constants",
            stmt.pos if stmt is not None else None,
        )
    return findings


def _block_pos(block):
    """Source position of a block's first positioned instruction, if any."""
    for instr in block.instrs:
        stmt = getattr(instr, "stmt", None)
        if stmt is not None and stmt.pos is not None:
            return stmt.pos
    stmt = getattr(block.terminator, "stmt", None)
    return stmt.pos if stmt is not None else None


def check_dead_procedures(result) -> List[Finding]:
    """Program-level ICP004: whole procedures no execution can enter."""
    rule = RULES["ICP004"]
    findings: List[Finding] = []
    in_pcg = set(result.pcg.nodes)
    for proc in result.program.procedures:
        if proc.name in in_pcg:
            continue
        findings.append(
            Finding.at(
                rule,
                f"procedure '{proc.name}' is never called from "
                f"'{result.pcg.entry}'",
                proc=proc.name,
                pos=proc.pos,
                severity="note",
            )
        )
    for name in sorted(in_pcg - set(result.fs.fs_reachable)):
        proc = result.program.procedure_map().get(name)
        findings.append(
            Finding.at(
                rule,
                f"procedure '{name}' is unreachable: every call path to it "
                "is dead under interprocedurally propagated constants",
                proc=name,
                pos=proc.pos if proc is not None else None,
            )
        )
    return findings


# ----------------------------------------------------------------------
# ICP005 — call-site signature mismatches (structural pre-scan).
# ----------------------------------------------------------------------

def check_call_signatures(
    program: ast.Program,
    symbols: Dict[str, ProcedureSymbols],
    allow_missing: bool = False,
) -> List[Finding]:
    """Arity, value-position, undefined-callee, and kind mismatches.

    This is a *structural* scan over the raw program: the validator rejects
    the error-severity cases before the pipeline runs, so `check` runs this
    first and can lint programs the pipeline refuses.  Array/scalar kind
    mismatches pass validation (bare-variable arguments are usage-exempt
    there) and surface only here, as warnings.
    """
    rule = RULES["ICP005"]
    proc_map = program.procedure_map()
    findings: List[Finding] = []
    for proc in program.procedures:
        proc_symbols = symbols.get(proc.name)
        if proc_symbols is None:
            continue
        for site in proc_symbols.call_sites:
            pos = site.stmt.pos
            callee = site.callee
            if callee not in proc_map:
                findings.append(
                    Finding.at(
                        rule,
                        f"call to undefined procedure '{callee}'",
                        proc=proc.name,
                        pos=pos,
                        severity="warning" if allow_missing else "error",
                    )
                )
                continue
            callee_symbols = symbols[callee]
            formals = proc_map[callee].formals
            if len(site.args) != len(formals):
                findings.append(
                    Finding.at(
                        rule,
                        f"call to '{callee}' passes {len(site.args)} "
                        f"argument(s) but '{callee}' declares "
                        f"{len(formals)} formal(s)",
                        proc=proc.name,
                        pos=pos,
                    )
                )
                continue
            if site.is_value_call and not callee_symbols.has_value_return:
                findings.append(
                    Finding.at(
                        rule,
                        f"'{callee}' is called in value position but never "
                        "returns a value",
                        proc=proc.name,
                        pos=pos,
                    )
                )
            for i, arg in enumerate(site.args):
                formal = formals[i]
                formal_array = formal in callee_symbols.array_names
                formal_scalar = formal in callee_symbols.scalar_names
                if isinstance(arg, ast.Var):
                    arg_array = arg.name in proc_symbols.array_names
                    arg_scalar = arg.name in proc_symbols.scalar_names
                    if arg_array and not arg_scalar and formal_scalar and not formal_array:
                        mismatch = (
                            f"passes array '{arg.name}' to formal "
                            f"'{formal}', which '{callee}' uses as a scalar"
                        )
                    elif arg_scalar and not arg_array and formal_array and not formal_scalar:
                        mismatch = (
                            f"passes scalar '{arg.name}' to formal "
                            f"'{formal}', which '{callee}' uses as an array"
                        )
                    else:
                        continue
                elif formal_array and not formal_scalar:
                    mismatch = (
                        f"passes a scalar expression to formal '{formal}', "
                        f"which '{callee}' uses as an array"
                    )
                else:
                    continue
                findings.append(
                    Finding.at(
                        rule,
                        f"argument {i + 1} of the call to '{callee}' {mismatch}",
                        proc=proc.name,
                        pos=pos,
                        severity="warning",
                    )
                )
    return findings


def has_fatal_signature_errors(findings: List[Finding]) -> bool:
    """True when the structural scan found something the validator rejects
    (the pipeline cannot run on this program)."""
    return any(
        f.rule_id == "ICP005" and f.severity == "error" for f in findings
    )


# ----------------------------------------------------------------------
# ICP006 — recursion-fallback precision warnings.
# ----------------------------------------------------------------------

def check_fallback_precision(result) -> List[Finding]:
    """Call edges where the FS solution substituted the FI fallback.

    The edges come from the FS solution itself (``result.fs.fallback_edges``)
    rather than the PCG's structural back edges: under the default
    carini-hind traversal the two sets coincide (every back edge forces the
    paper's Section 3.2 fallback), while under ``context_mode =
    "value-contexts"`` only the edges the blowup guard degraded remain —
    edges the tabulation resolved carry genuine per-context entry facts and
    report nothing.

    The message names the *full recursion cycle* (sorted member
    procedures), not just the one fallback edge, so a finding's fingerprint
    is stable when the same cycle is entered from a different edge.
    """
    rule = RULES["ICP006"]
    scc_of: Dict[str, List[str]] = {}
    for component in result.pcg.sccs:
        for name in component:
            scc_of[name] = component
    self_recursive = {
        edge.callee for edge in result.pcg.edges if edge.caller == edge.callee
    }
    findings: List[Finding] = []
    ordered = sorted(
        result.fs.fallback_edges,
        key=lambda edge: (edge.caller, edge.site.index),
    )
    for edge in ordered:
        component = scc_of.get(edge.callee, [edge.callee])
        if len(component) > 1 or edge.callee in self_recursive:
            cycle = "recursion cycle through " + ", ".join(
                f"'{name}'" for name in sorted(component)
            )
        else:
            cycle = "back edge in the traversal order"
        findings.append(
            Finding.at(
                rule,
                f"call to '{edge.callee}' uses the flow-insensitive "
                f"fallback ({cycle}): entry facts for '{edge.callee}' on "
                "this path are the FI solution",
                proc=edge.caller,
                pos=edge.site.stmt.pos,
            )
        )
    return findings
