"""Interprocedural diagnostics over the ICP pipeline.

The pipeline of Carini & Hind computes everything a serious static checker
needs — the PCG, alias and MOD/REF summaries, USE sets, and both constant
solutions.  This package turns those artifacts into user-facing findings
with stable rule IDs:

========  ====================  ========================================
ICP001    use-before-init       entry reads no path initializes
ICP002    argument-aliasing     aliased actuals with a modified formal
ICP003    dead-store            assigned value never read
ICP004    unreachable-code      dead code / decided branches under FS
ICP005    call-mismatch         arity, value-position, kind mismatches
ICP006    recursion-fallback    FI fallback on a PCG cycle
ICP900    unsound-constant      sanitizer: claim contradicted by a run
ICP901    sanitizer-skipped     sanitizer could not execute the program
========  ====================  ========================================

Entry points: :func:`check_source` (one source text, end to end),
:func:`run_diagnostics` (an already-computed pipeline result), and
``python -m repro.diag.sanitize`` (the CI soundness sweep).
"""

from repro.diag.engine import (
    DiagnosticsResult,
    DiagOptions,
    check_source,
    procedure_findings,
    run_diagnostics,
)
from repro.diag.findings import RULES, SEVERITIES, Finding, Rule
from repro.diag.suppress import (
    load_baseline,
    source_suppressions,
    write_baseline,
)

def __getattr__(name):
    # Imported lazily so ``python -m repro.diag.sanitize`` does not load the
    # module twice (once via this package, once as __main__).
    if name == "sanitize_result":
        from repro.diag.sanitize import sanitize_result

        return sanitize_result
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DiagOptions",
    "DiagnosticsResult",
    "Finding",
    "RULES",
    "Rule",
    "SEVERITIES",
    "check_source",
    "load_baseline",
    "procedure_findings",
    "run_diagnostics",
    "sanitize_result",
    "source_suppressions",
    "write_baseline",
]
