"""The soundness sanitizer (ICP900): execute, observe, cross-check.

Every flow-sensitive "constant at entry/call" claim is a theorem about all
executions; the reference interpreter provides one.  The sanitizer runs the
program under a :class:`~repro.interp.Recorder` and reports any claim the
recorded values contradict as an ``ICP900`` finding — by construction any
instance is an analysis bug, so CI fails on the first one.

Checked claims (mirroring ``tests/helpers.soundness_violations``):

- FS entry-formal and entry-global constants (vacuous when the procedure
  never executed or the variable was uninitialized there);
- FS argument and recorded-global constants at executable call sites;
- FS unreachability claims — a procedure outside ``fs_reachable`` or a call
  site marked non-executable that the interpreter nevertheless entered.

Comparison is type-sensitive (``values_equal``): the integer 1 and the
float 1.0 are *different* constants, exactly as in the lattice.

Run ``python -m repro.diag.sanitize`` to sweep the benchmark suite (CI's
soundness gate); pass file paths to sanitize sources on disk.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.diag.findings import RULES, Finding
from repro.errors import InterpreterError, ReproError
from repro.interp.interpreter import MULTIPLE, Recorder, run_program
from repro.ir.lattice import values_equal


def sanitize_result(result, max_steps: int = 1_000_000) -> List[Finding]:
    """Cross-check one pipeline result against an actual execution."""
    program = result.program
    recorder = Recorder()
    try:
        run_program(program, max_steps=max_steps, recorder=recorder)
    except InterpreterError as error:
        return [
            Finding.at(
                RULES["ICP901"],
                f"reference execution failed ({error}); "
                "constant claims were not cross-checked",
            )
        ]

    findings: List[Finding] = []
    proc_map = program.procedure_map()
    unsound = RULES["ICP900"]

    def proc_pos(proc: str):
        node = proc_map.get(proc)
        return node.pos if node is not None else None

    def describe(observed) -> str:
        return (
            "multiple differing values"
            if observed is MULTIPLE
            else repr(observed)
        )

    def check_entry(kind: str, proc: str, var: str, claimed) -> None:
        observed = recorder.entry_values.get((proc, var))
        if observed is None:
            return  # never executed (or never initialized there): vacuous
        if observed is MULTIPLE or not values_equal(observed, claimed):
            findings.append(
                Finding.at(
                    unsound,
                    f"unsound {kind} constant: '{var}' claimed {claimed!r} "
                    f"at entry of '{proc}' but observed "
                    f"{describe(observed)}",
                    proc=proc,
                    pos=proc_pos(proc),
                )
            )

    for (proc, formal), value in sorted(result.fs.entry_formals.items()):
        if value.is_const:
            check_entry("entry-formal", proc, formal, value.const_value)
    for (proc, name), value in sorted(result.fs.entry_globals.items()):
        if value.is_const:
            check_entry("entry-global", proc, name, value.const_value)

    # FS unreachability claims for whole procedures.
    for proc in result.pcg.nodes:
        if proc in result.fs.fs_reachable:
            continue
        entered = recorder.entry_counts.get(proc, 0)
        if entered:
            findings.append(
                Finding.at(
                    unsound,
                    f"'{proc}' claimed unreachable by the flow-sensitive "
                    f"solution but was entered {entered} time(s)",
                    proc=proc,
                    pos=proc_pos(proc),
                )
            )

    # Call-site claims.
    for proc, intra in sorted(result.fs.intra.items()):
        if proc not in result.fs.fs_reachable:
            continue
        for (caller, site_index), site_values in sorted(intra.call_sites.items()):
            site = site_values.site
            pos = site.stmt.pos
            if not site_values.executable:
                executed = recorder.call_counts.get((caller, site_index), 0)
                if executed:
                    findings.append(
                        Finding.at(
                            unsound,
                            f"call site #{site_index} to '{site.callee}' in "
                            f"'{caller}' claimed unreachable but executed "
                            f"{executed} time(s)",
                            proc=caller,
                            pos=pos,
                        )
                    )
                continue
            for arg_pos, value in enumerate(site_values.arg_values):
                if not value.is_const:
                    continue
                observed = recorder.call_args.get((caller, site_index, arg_pos))
                if observed is None:
                    continue
                if observed is MULTIPLE or not values_equal(
                    observed, value.const_value
                ):
                    findings.append(
                        Finding.at(
                            unsound,
                            f"unsound argument constant: argument "
                            f"{arg_pos + 1} of call site #{site_index} to "
                            f"'{site.callee}' in '{caller}' claimed "
                            f"{value.const_value!r} but observed "
                            f"{describe(observed)}",
                            proc=caller,
                            pos=pos,
                        )
                    )
            for name, value in sorted(site_values.global_values.items()):
                if not value.is_const:
                    continue
                observed = recorder.call_globals.get((caller, site_index, name))
                if observed is None:
                    continue
                if observed is MULTIPLE or not values_equal(
                    observed, value.const_value
                ):
                    findings.append(
                        Finding.at(
                            unsound,
                            f"unsound global constant: '{name}' claimed "
                            f"{value.const_value!r} at call site "
                            f"#{site_index} to '{site.callee}' in "
                            f"'{caller}' but observed {describe(observed)}",
                            proc=caller,
                            pos=pos,
                        )
                    )
    return findings


# ----------------------------------------------------------------------
# CLI sweep: ``python -m repro.diag.sanitize`` (the CI soundness gate).
# ----------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.diag.sanitize",
        description=(
            "Run the ICP900 soundness sanitizer over the benchmark suite "
            "(and any extra source files); exits 1 on any unsound claim."
        ),
    )
    parser.add_argument(
        "files",
        nargs="*",
        metavar="FILE",
        help="additional MiniF (.mf) or F77 (.f/.for/.f77) sources to check",
    )
    parser.add_argument("--scale", type=int, default=1, help="suite scale factor")
    parser.add_argument(
        "--skip-suite",
        action="store_true",
        help="sanitize only the given FILEs, not the benchmark suite",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=1_000_000,
        help="interpreter step budget per program",
    )
    parser.add_argument(
        "--context-mode",
        choices=("carini-hind", "value-contexts"),
        default="carini-hind",
        dest="context_mode",
        help="interprocedural context treatment to sanitize (default: "
        "carini-hind); the sweep includes the recursion-heavy profiles "
        "either way, since those stress the chosen mode hardest",
    )
    args = parser.parse_args(argv)

    from repro.bench.suite import RECURSION_SUITE, SUITE, build_benchmark
    from repro.core.config import ICPConfig
    from repro.core.driver import CompilationPipeline
    from repro.lang.fortran import parse_fortran
    from repro.lang.parser import parse_program

    pipeline = CompilationPipeline(
        ICPConfig.from_dict({"context_mode": args.context_mode})
    )
    targets = []
    if not args.skip_suite:
        profiles = {**SUITE, **RECURSION_SUITE}
        for name in sorted(profiles):
            targets.append((name, build_benchmark(profiles[name], args.scale)))
    for path in args.files:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        if path.lower().endswith((".f", ".for", ".f77")):
            targets.append((path, parse_fortran(text)))
        else:
            targets.append((path, parse_program(text)))

    unsound_total = 0
    skipped_total = 0
    for name, program in targets:
        try:
            result = pipeline.run(program)
        except ReproError as error:
            print(f"{name}: analysis failed ({error})")
            skipped_total += 1
            continue
        findings = sanitize_result(result, max_steps=args.max_steps)
        unsound = [f for f in findings if f.rule_id == "ICP900"]
        skipped = [f for f in findings if f.rule_id == "ICP901"]
        unsound_total += len(unsound)
        skipped_total += len(skipped)
        status = "ok" if not findings else f"{len(unsound)} ICP900"
        if skipped:
            status += f", {len(skipped)} skipped"
        print(f"{name}: {status}")
        for finding in unsound + skipped:
            print(f"  {finding.render()}")
    print(
        f"sanitized {len(targets)} program(s): "
        f"{unsound_total} unsound claim(s), {skipped_total} skipped"
    )
    return 1 if unsound_total else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
