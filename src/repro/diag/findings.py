"""The diagnostics data model: rules, severities, findings.

A :class:`Finding` is one diagnostic instance — a stable rule ID, a severity,
a source location, and a message.  Messages deliberately contain *no* line
numbers: the baseline mechanism fingerprints findings by (rule, procedure,
message), so a finding survives unrelated edits that shift lines.

Everything here is a pure value type with a deterministic ordering
(:meth:`Finding.sort_key`), which is what makes session-incremental
re-linting render byte-identically to a cold run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SourcePos

#: Severity names, weakest first.  Order matters: the severity floor and the
#: CI gate compare through :data:`SEVERITY_ORDER`.
SEVERITIES = ("note", "warning", "error")
SEVERITY_ORDER: Dict[str, int] = {name: i for i, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Rule:
    """One diagnostic rule: a stable ID plus its catalog metadata."""

    id: str            # "ICP001"
    name: str          # kebab-case slug, e.g. "use-before-init"
    severity: str      # default severity of its findings
    summary: str       # one-line description (SARIF shortDescription)
    rationale: str     # what pipeline facts the rule reads (fullDescription)


#: The rule catalog.  IDs are append-only and never renumbered; docs/
#: DIAGNOSTICS.md carries the long-form catalog with examples and fixes.
RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            "ICP001",
            "use-before-init",
            "warning",
            "variable may be read before initialization",
            "A variable is upward-exposed in the entry procedure even when "
            "interprocedural MOD sets are credited as initializers: no path "
            "from program entry — through any call — writes it before the "
            "first read.  Computed from USE sets with call MOD effects as "
            "kills.",
        ),
        Rule(
            "ICP002",
            "argument-aliasing",
            "warning",
            "aliased actual arguments with a modified formal",
            "Two actual arguments at a call may alias (same variable, "
            "propagated alias pair, or a global passed as an argument) while "
            "the callee may modify a corresponding formal.  Fortran leaves "
            "such calls undefined; the analyses stay sound via may-defs, but "
            "the program's meaning is implementation-dependent.",
        ),
        Rule(
            "ICP003",
            "dead-store",
            "warning",
            "assigned value is never read",
            "Backward liveness over the procedure CFG, with call read "
            "effects bound from interprocedural USE summaries and visible "
            "variables kept live at exits of non-entry procedures: the "
            "stored value cannot be observed by any execution.",
        ),
        Rule(
            "ICP004",
            "unreachable-code",
            "warning",
            "code unreachable or branch decided under propagated constants",
            "The flow-sensitive SCC solution proves a block unreachable or a "
            "branch always taken under the interprocedurally propagated "
            "entry constants — the paper's Figure 1 precision, surfaced as "
            "a lint.",
        ),
        Rule(
            "ICP005",
            "call-mismatch",
            "error",
            "call signature mismatch",
            "A call site disagrees with its callee's declaration: wrong "
            "arity, a value-position call to a procedure that never returns "
            "a value, a call to an undefined procedure, or an array/scalar "
            "usage-kind mismatch between an actual and its formal.",
        ),
        Rule(
            "ICP006",
            "recursion-fallback",
            "note",
            "flow-insensitive fallback on a call-graph cycle",
            "The call edge is a PCG back/fallback edge, so the flow-"
            "sensitive traversal substituted the flow-insensitive solution "
            "for it (paper Section 3.2) — entry facts for the callee may be "
            "weaker than a full fixpoint would give.",
        ),
        Rule(
            "ICP900",
            "unsound-constant",
            "error",
            "claimed constant contradicted by execution",
            "The soundness sanitizer executed the program under the "
            "reference interpreter and observed a value that contradicts a "
            "flow-sensitive 'constant at entry/call' claim.  Any instance "
            "is an analysis bug.",
        ),
        Rule(
            "ICP901",
            "sanitizer-skipped",
            "note",
            "sanitizer could not execute the program",
            "The reference interpreter raised a runtime error or exceeded "
            "its step budget, so constant claims could not be cross-checked "
            "against observed values for this program.",
        ),
    )
}


@dataclass(frozen=True)
class Finding:
    """One diagnostic instance."""

    rule_id: str
    severity: str
    message: str
    #: Procedure the finding belongs to ("" for program-level findings).
    proc: str = ""
    #: 1-based source line/column; 0 when the position is unknown.
    line: int = 0
    column: int = 0

    @classmethod
    def at(
        cls,
        rule: Rule,
        message: str,
        proc: str = "",
        pos: Optional[SourcePos] = None,
        severity: Optional[str] = None,
    ) -> "Finding":
        return cls(
            rule_id=rule.id,
            severity=severity or rule.severity,
            message=message,
            proc=proc,
            line=pos.line if pos is not None else 0,
            column=pos.column if pos is not None else 0,
        )

    def sort_key(self):
        """Deterministic ordering: by position, then rule, then text."""
        return (self.line, self.column, self.rule_id, self.proc, self.message)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining (line numbers excluded)."""
        payload = f"{self.rule_id}|{self.proc}|{self.message}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        """One text-report line (no file prefix)."""
        where = f"{self.line}:{self.column}" if self.line else "-"
        scope = f" [{self.proc}]" if self.proc else ""
        return f"{where:>7}  {self.severity:<7} {self.rule_id}{scope} {self.message}"
