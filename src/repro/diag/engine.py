"""The diagnostics engine: options, orchestration, results.

:func:`run_diagnostics` is the one entry point: it fans a pipeline result
through the six checks (plus, on request, the ICP900 sanitizer), filters by
enabled rules / severity floor / ``noqa`` suppressions / baseline, and
returns a :class:`DiagnosticsResult` with a deterministic finding order.

The per-procedure checks are split out as :func:`procedure_findings` so the
incremental session path (:meth:`repro.api.AnalysisSession.diagnostics`) can
re-run them for *only* the procedures the last edit dirtied and splice
cached findings for the rest — the final filter/sort runs over the union, so
the rendered report is byte-identical to a cold run.

Observability: each check runs under a ``diag.<rule-name>`` tracer span and
a ``diag.check_seconds`` histogram sample; kept findings increment
``diag.findings.<RULE>`` counters on the session's MetricsRegistry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.diag import checks
from repro.diag.findings import (
    RULES,
    SEVERITIES,
    SEVERITY_ORDER,
    Finding,
)
from repro.diag.suppress import (
    SuppressionTable,
    apply_baseline,
    apply_suppressions,
)
from repro.obs import NULL_OBS, Observability

#: Per-procedure rule implementations, in rule-ID order.
_PROC_CHECKS: Tuple[Tuple[str, Callable], ...] = (
    ("ICP002", checks.check_aliasing),
    ("ICP003", checks.check_dead_stores),
    ("ICP004", checks.check_reachability),
)

#: Program-level rule implementations (beyond the structural ICP005 scan).
_PROGRAM_CHECKS: Tuple[Tuple[str, Callable], ...] = (
    ("ICP001", checks.check_use_before_init),
    ("ICP004", checks.check_dead_procedures),
    ("ICP006", checks.check_fallback_precision),
)


@dataclass(frozen=True)
class DiagOptions:
    """What to check and what to keep."""

    #: Enabled rule IDs; ``None`` enables every rule.
    rules: Optional[FrozenSet[str]] = None
    #: Weakest severity to report ("note" keeps everything).
    severity_floor: str = "note"
    #: Execute the program and cross-check constant claims (ICP900).
    sanitize: bool = False
    #: Interpreter step budget for the sanitizer.
    max_steps: int = 1_000_000

    def __post_init__(self):
        if self.severity_floor not in SEVERITIES:
            raise ValueError(
                f"unknown severity floor {self.severity_floor!r}; "
                f"expected one of {SEVERITIES}"
            )
        if self.rules is not None:
            unknown = sorted(set(self.rules) - set(RULES))
            if unknown:
                raise ValueError(
                    f"unknown rule IDs: {unknown}; known: {sorted(RULES)}"
                )
            object.__setattr__(self, "rules", frozenset(self.rules))

    @classmethod
    def from_config(cls, config) -> "DiagOptions":
        """Lift the ``diag_*`` keys of an :class:`ICPConfig`."""
        return cls(
            rules=(
                frozenset(config.diag_rules)
                if config.diag_rules is not None
                else None
            ),
            severity_floor=config.diag_severity_floor,
        )

    def admits(self, finding: Finding) -> bool:
        if self.rules is not None and finding.rule_id not in self.rules:
            return False
        return (
            SEVERITY_ORDER[finding.severity]
            >= SEVERITY_ORDER[self.severity_floor]
        )


@dataclass
class DiagnosticsResult:
    """Filtered, deterministically ordered findings for one program."""

    findings: List[Finding] = field(default_factory=list)
    #: Findings dropped by per-line ``noqa`` directives.
    suppressed: int = 0
    #: Findings accepted by the baseline file.
    baselined: int = 0

    @property
    def counts(self) -> Dict[str, int]:
        """Kept findings per rule ID (sorted keys, deterministic)."""
        table: Dict[str, int] = {}
        for finding in self.findings:
            table[finding.rule_id] = table.get(finding.rule_id, 0) + 1
        return dict(sorted(table.items()))

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def render(self, path: Optional[str] = None) -> str:
        from repro.diag.output import render_findings

        return render_findings(self, path=path)


def _timed_check(
    obs: Observability, rule_id: str, run: Callable[[], List[Finding]]
) -> List[Finding]:
    if not obs.enabled:
        return run()
    name = RULES[rule_id].name
    started = time.perf_counter()
    with obs.tracer.span(f"diag.{name}", cat="diag", rule=rule_id):
        found = run()
    obs.metrics.histogram("diag.check_seconds").observe(
        time.perf_counter() - started
    )
    return found


def procedure_findings(
    result,
    procs: Optional[Sequence[str]] = None,
    obs: Observability = NULL_OBS,
) -> Dict[str, List[Finding]]:
    """Per-procedure findings (ICP002/ICP003/ICP004), keyed by procedure.

    ``procs`` restricts the scan (the incremental session path passes only
    the dirty procedures); the default covers every PCG node.  Every
    requested procedure gets an entry, empty or not, so callers can cache
    negative results too.
    """
    targets = list(procs) if procs is not None else list(result.pcg.nodes)
    table: Dict[str, List[Finding]] = {name: [] for name in targets}
    for rule_id, check in _PROC_CHECKS:
        def sweep(check=check):
            found: List[Finding] = []
            for name in targets:
                found.extend(check(result, name))
            return found

        for finding in _timed_check(obs, rule_id, sweep):
            table[finding.proc].append(finding)
    return table


def program_findings(result, obs: Observability = NULL_OBS) -> List[Finding]:
    """Program-level findings: ICP001, ICP005, dead procedures, ICP006."""
    findings: List[Finding] = []
    for rule_id, check in _PROGRAM_CHECKS:
        findings.extend(_timed_check(obs, rule_id, lambda check=check: check(result)))
    findings.extend(
        _timed_check(
            obs,
            "ICP005",
            lambda: checks.check_call_signatures(
                result.program, result.symbols, result.config.allow_missing
            ),
        )
    )
    return findings


def run_diagnostics(
    result,
    options: Optional[DiagOptions] = None,
    *,
    obs: Optional[Observability] = None,
    suppressions: Optional[SuppressionTable] = None,
    baseline: FrozenSet[str] = frozenset(),
    proc_findings: Optional[Dict[str, List[Finding]]] = None,
) -> DiagnosticsResult:
    """Run every enabled check over a pipeline result.

    ``proc_findings`` lets the incremental session pass pre-computed (or
    partially cached) per-procedure findings; when absent they are computed
    fresh.  Program-level checks and the sanitizer always run — they read
    whole-program artifacts no per-procedure dirty set can scope.
    """
    options = options or DiagOptions()
    obs = obs or NULL_OBS

    per_proc = (
        proc_findings
        if proc_findings is not None
        else procedure_findings(result, obs=obs)
    )
    collected: List[Finding] = []
    for name in sorted(per_proc):
        collected.extend(per_proc[name])
    collected.extend(program_findings(result, obs=obs))

    if options.sanitize:
        from repro.diag.sanitize import sanitize_result

        collected.extend(
            _timed_check(
                obs,
                "ICP900",
                lambda: sanitize_result(result, max_steps=options.max_steps),
            )
        )

    active = sorted(
        (f for f in collected if options.admits(f)), key=Finding.sort_key
    )
    kept, suppressed = apply_suppressions(active, suppressions or {})
    kept, baselined = apply_baseline(kept, baseline)

    if obs.metrics.enabled:
        obs.metrics.counter("diag.runs").inc()
        for rule_id, count in DiagnosticsResult(kept).counts.items():
            obs.metrics.counter(f"diag.findings.{rule_id}").inc(count)

    return DiagnosticsResult(
        findings=kept, suppressed=suppressed, baselined=baselined
    )


def check_source(
    source: str,
    path: str = "<string>",
    config=None,
    options: Optional[DiagOptions] = None,
    obs: Optional[Observability] = None,
    baseline: FrozenSet[str] = frozenset(),
) -> DiagnosticsResult:
    """Parse, analyze, and lint one source text (the ``check`` command core).

    ``noqa`` suppressions are read from the source's own comments.  When the
    structural ICP005 scan finds an error the validator would reject, the
    pipeline is skipped and the structural findings alone are reported —
    `check` can lint programs `analyze` refuses.
    """
    from repro.core.config import ICPConfig
    from repro.core.driver import CompilationPipeline
    from repro.diag.suppress import source_suppressions
    from repro.lang.fortran import parse_fortran
    from repro.lang.parser import parse_program
    from repro.lang.symbols import collect_symbols

    fortran = path.lower().endswith((".f", ".for", ".f77"))
    program = parse_fortran(source) if fortran else parse_program(source)
    suppressions = source_suppressions(source, fortran=fortran)
    config = config or ICPConfig()
    options = options or DiagOptions.from_config(config)

    structural = checks.check_call_signatures(
        program, collect_symbols(program), config.allow_missing
    )
    if checks.has_fatal_signature_errors(structural):
        active = sorted(
            (f for f in structural if options.admits(f)),
            key=Finding.sort_key,
        )
        kept, suppressed = apply_suppressions(active, suppressions)
        kept, baselined = apply_baseline(kept, baseline)
        return DiagnosticsResult(
            findings=kept, suppressed=suppressed, baselined=baselined
        )

    result = CompilationPipeline(config, obs=obs).run(program)
    return run_diagnostics(
        result,
        options,
        obs=obs,
        suppressions=suppressions,
        baseline=baseline,
    )
