"""Rendering findings: text, JSON, and SARIF 2.1.0.

All three renderers are deterministic functions of their inputs — no
timestamps, no absolute paths, no environment — which is what lets the
session-incremental path guarantee byte-identical reports against a cold
run, and lets CI diff SARIF artifacts across commits.

The SARIF output is hand-rolled (stdlib ``json`` only) against the OASIS
SARIF 2.1.0 schema: one ``run``, the rule catalog under
``tool.driver.rules``, one ``result`` per finding with a ``physicalLocation``
and a ``partialFingerprints`` entry carrying the baseline fingerprint.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.diag.findings import RULES, Finding

JSON_SCHEMA = "repro-icp/diag/v1"
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: SARIF has no "warning < error in a 'note' world" subtleties: our three
#: severities map one-to-one onto SARIF result levels.
_SARIF_LEVEL = {"note": "note", "warning": "warning", "error": "error"}

#: One checked file: (display path or None, DiagnosticsResult).
Entry = Tuple[Optional[str], "repro.diag.engine.DiagnosticsResult"]


def render_findings(diag, path: Optional[str] = None) -> str:
    """The canonical single-program text report.

    ``repro.core.report.diagnostics_report`` and the ``check`` subcommand
    both delegate here, so the byte-identity acceptance test compares this
    exact rendering.
    """
    label = path if path is not None else "<program>"
    count = len(diag.findings)
    header = f"{label}: {count} finding(s)"
    extras = []
    if diag.suppressed:
        extras.append(f"{diag.suppressed} suppressed")
    if diag.baselined:
        extras.append(f"{diag.baselined} baselined")
    if extras:
        header += " (" + ", ".join(extras) + ")"
    lines = [header]
    lines.extend("  " + finding.render() for finding in diag.findings)
    return "\n".join(lines)


def render_text(entries: Sequence[Entry]) -> str:
    """Multi-file text report plus a severity totals footer."""
    sections = [render_findings(diag, path) for path, diag in entries]
    totals: Dict[str, int] = {}
    for _, diag in entries:
        for finding in diag.findings:
            totals[finding.severity] = totals.get(finding.severity, 0) + 1
    footer = "total: " + (
        ", ".join(
            f"{totals[name]} {name}(s)"
            for name in ("error", "warning", "note")
            if name in totals
        )
        or "no findings"
    )
    return "\n".join(sections + [footer]) + "\n"


def render_json(entries: Sequence[Entry]) -> str:
    """Machine-readable JSON (schema ``repro-icp/diag/v1``)."""
    files = []
    for path, diag in entries:
        files.append(
            {
                "path": path,
                "findings": [
                    {
                        "rule": finding.rule_id,
                        "severity": finding.severity,
                        "line": finding.line,
                        "column": finding.column,
                        "proc": finding.proc,
                        "message": finding.message,
                        "fingerprint": finding.fingerprint,
                    }
                    for finding in diag.findings
                ],
                "suppressed": diag.suppressed,
                "baselined": diag.baselined,
                "counts": diag.counts,
            }
        )
    return json.dumps(
        {"schema": JSON_SCHEMA, "files": files}, indent=2, sort_keys=True
    ) + "\n"


def render_sarif(entries: Sequence[Entry]) -> str:
    """SARIF 2.1.0: one run covering every checked file."""
    rule_ids = sorted(RULES)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    rules = [
        {
            "id": rule_id,
            "name": RULES[rule_id].name,
            "shortDescription": {"text": RULES[rule_id].summary},
            "fullDescription": {"text": RULES[rule_id].rationale},
            "defaultConfiguration": {
                "level": _SARIF_LEVEL[RULES[rule_id].severity]
            },
        }
        for rule_id in rule_ids
    ]
    results: List[dict] = []
    for path, diag in entries:
        uri = path if path is not None else "<program>"
        for finding in diag.findings:
            location = {
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                }
            }
            if finding.line:
                location["physicalLocation"]["region"] = {
                    "startLine": finding.line,
                    "startColumn": max(finding.column, 1),
                }
            if finding.proc:
                location["logicalLocations"] = [
                    {"name": finding.proc, "kind": "function"}
                ]
            results.append(
                {
                    "ruleId": finding.rule_id,
                    "ruleIndex": rule_index[finding.rule_id],
                    "level": _SARIF_LEVEL[finding.severity],
                    "message": {"text": finding.message},
                    "locations": [location],
                    "partialFingerprints": {
                        "icpLintFingerprint/v1": finding.fingerprint
                    },
                }
            )
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-icp",
                        "informationUri": (
                            "https://dl.acm.org/doi/10.1145/207110.207152"
                        ),
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
