"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` needs `wheel` for PEP 660 editable
installs; this shim lets `python setup.py develop` work offline instead.
Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
