#!/usr/bin/env python
"""Whole-program optimization driven by interprocedural constants.

Shows the paper's backward-walk transformation on a configuration-driven
workload (the object-oriented/modular motivation of the paper's intro): a
generic kernel is specialized because the configuration flags reaching it
are interprocedural constants.  The flow-sensitive method proves the debug
path dead and folds the scaling math; the output program is what a compiler
would hand to code generation.

Run:  python examples/optimize_program.py
"""

from repro import ICPConfig, analyze_program
from repro.interp import run_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program

SOURCE = """\
global debug_level, unit_scale;

init {
    debug_level = 0;
    unit_scale = 100;
}

proc main() {
    call run_batch(5);
}

proc run_batch(count) {
    i = count;
    while (i > 0) {
        call process(i, 3);
        i = i - 1;
    }
}

proc process(item, window) {
    # window is 3 at the only call site; debug_level is the block-data 0.
    if (debug_level > 0) {
        call trace(item, window);
    }
    half = window / 2;
    result = item * unit_scale + half;
    call emit(result, window * window);
}

proc trace(item, window) {
    print(item * 1000 + window);
}

proc emit(value, area) {
    print(value + area);
}
"""


def main() -> None:
    program = parse_program(SOURCE)
    result = analyze_program(program, ICPConfig(), run_transform=True)
    assert result.transform is not None

    print("== original ==")
    print(pretty_program(program))
    print("== optimized (constants substituted, dead branches pruned) ==")
    print(pretty_program(result.transform.program))
    print(
        f"substitutions: {result.transform.total_substitutions}, "
        f"folds: {result.transform.total_folds}, "
        f"branches pruned: {result.transform.total_pruned}"
    )

    before = run_program(program).outputs
    after = run_program(result.transform.program).outputs
    assert before == after, (before, after)
    print(f"behaviour preserved across {len(before)} outputs: {before}")

    # `trace` is now unreachable: the debug branch was deleted outright.
    optimized_source = pretty_program(result.transform.program)
    assert "call trace" not in optimized_source
    print("the debug/trace path was proven dead and removed")


if __name__ == "__main__":
    main()
