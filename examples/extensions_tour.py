#!/usr/bin/env python
"""Tour of the extensions built around the paper's core algorithm.

1. **Return constants** (paper Section 3.2 extension): one extra reverse
   traversal propagates constant return values to call sites.
2. **Iterative baseline**: the fixpoint the one-pass method approximates —
   more precise on cycles, at the cost of repeated analyses.
3. **Procedure cloning** (Figure 2 step 6 / Metzger–Stroud): specialize
   procedures whose call sites disagree on constants.
4. **Inlining vs ICP** (Section 5, Wegman–Zadeck): procedure integration
   recovers the same constants at a measured code-growth cost.
5. **The full optimizer**: substitute, fold, prune, sweep, shrink.

Run:  python examples/extensions_tour.py
"""

from repro.core import (
    ICPConfig,
    analyze_program,
    clone_for_constants,
    inline_calls,
    iterative_flow_sensitive_icp,
    optimize_program,
)
from repro.core.inlining import statement_count
from repro.interp import run_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program


def returns_demo() -> None:
    print("== 1. return-constant extension ==")
    source = """
    proc main() { x = answer(); print(x + 1); }
    proc answer() { return 41; }
    """
    base = analyze_program(source, ICPConfig(), run_transform=True)
    extended = analyze_program(
        source, ICPConfig(propagate_returns=True), run_transform=True
    )
    print("  without returns:", base.transform.total_substitutions, "substitutions")
    print("  with returns:   ", extended.transform.total_substitutions,
          "substitutions;", dict(extended.returns.constant_returns()))
    print()


def exit_values_demo() -> None:
    print("== 1b. exit-value extension (constant setup subroutines) ==")
    source = """
    global mode;
    proc main() { call init_mode(); print(mode * 10); }
    proc init_mode() { mode = 4; }
    """
    config = ICPConfig(propagate_returns=True, propagate_exit_values=True)
    result = analyze_program(source, config, run_transform=True)
    print("  exit values:", result.returns.constant_exit_values())
    print("  substitutions after the call:", result.transform.total_substitutions)
    print()


def iterative_demo() -> None:
    print("== 2. iterative fixpoint vs one-pass (recursion) ==")
    source = """
    proc main() { call f(7, 3); }
    proc f(p, n) { if (n > 0) { call f(p * 1, n - 1); } print(p); }
    """
    result = analyze_program(source)
    iterative = iterative_flow_sensitive_icp(
        result.program, result.symbols, result.pcg, result.modref,
        result.aliases, result.config,
    )
    print("  one-pass  f.p:", result.fs.entry_formal("f", "p"),
          f"({len(result.pcg.nodes)} analyses)")
    print("  iterative f.p:", iterative.entry_formal("f", "p"),
          f"({iterative.analyses_performed} analyses)")
    print()


def cloning_demo() -> None:
    print("== 3. goal-directed procedure cloning ==")
    source = """
    proc main() { call kernel(8, 1); call kernel(8, 2); }
    proc kernel(size, mode) { print(size * mode); }
    """
    result = analyze_program(source)
    cloned = clone_for_constants(result)
    after = analyze_program(cloned.program)
    print("  constants before:", result.fs.constant_formals())
    print("  clones created:  ", cloned.clones)
    print("  constants after: ", after.fs.constant_formals())
    print()


def inlining_demo() -> None:
    print("== 4. inlining (procedure integration) vs ICP ==")
    source = """
    proc main() { call stage(5); }
    proc stage(a) { call leaf(a * 2); }
    proc leaf(x) { print(x + 1); }
    """
    program = parse_program(source)
    grown = inline_calls(program, rounds=3)
    print("  statements before:", statement_count(parse_program(source)),
          "after inlining:", grown.statement_count(),
          f"({grown.inlined_calls} calls inlined)")
    print()


def optimizer_demo() -> None:
    print("== 5. the full optimizer ==")
    source = """
    global debug;
    init { debug = 0; }
    proc main() { call work(3); }
    proc work(n) {
        if (debug > 0) { call trace(n); }
        x = n * 2;
        print(x + 1);
    }
    proc trace(v) { print(v); }
    """
    result = optimize_program(source, clone=True, inline=True)
    print("  " + result.summary())
    print("  optimized program:")
    for line in pretty_program(result.program).splitlines():
        print("    " + line)
    assert run_program(result.program).outputs == run_program(
        parse_program(source)
    ).outputs


def main() -> None:
    returns_demo()
    exit_values_demo()
    iterative_demo()
    cloning_demo()
    inlining_demo()
    optimizer_demo()


if __name__ == "__main__":
    main()
