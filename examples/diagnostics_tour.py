#!/usr/bin/env python
"""Tour of the diagnostics engine: cold checks, sessions, and the sanitizer.

Demonstrates the three ways into ``repro.diag``:

1. :func:`repro.api.check_source` — one-shot lint of a source text (the
   core of ``repro-icp check``), including per-line ``noqa`` suppression.
2. :meth:`repro.api.AnalysisSession.diagnostics` — incremental re-linting:
   after an edit only the dirty procedures are re-checked, and the rendered
   report stays byte-identical to a cold run.
3. :func:`repro.diag.sanitize_result` — execute the program with the
   reference interpreter and cross-check every flow-sensitive constant
   claim against observed values (ICP900 on any mismatch).

Run:  python examples/diagnostics_tour.py
"""

from repro.api import AnalysisSession, DiagOptions, analyze, check_source
from repro.core.report import diagnostics_report
from repro.diag import sanitize_result
from repro.lang.parser import parse_program

SOURCE = """\
proc main() {
    limit = 8;
    call count_down(limit);
    call scaled(limit, limit);
}

proc count_down(n) {
    if (n > 0) {
        call count_down(n - 1);
    }
    print(n);
}

proc scaled(a, b) {
    a = a * b;
    print(a);
}
"""


def main() -> None:
    # --- 1. one-shot check ---------------------------------------------
    print("== cold check ==")
    diag = check_source(SOURCE, path="tour.mf")
    print(diagnostics_report(diag, path="tour.mf"))

    # --- 2. incremental session diagnostics ----------------------------
    print("\n== session diagnostics ==")
    session = AnalysisSession(SOURCE)
    first = session.diagnostics()
    print(f"cold run: {len(first.findings)} finding(s)")

    session.update(
        "scaled",
        """\
proc scaled(a, b) {
    a = a * b;
    waste = a - b;
    print(a);
}
""",
    )
    second = session.diagnostics()
    print("after edit:")
    print(diagnostics_report(second, path="tour.mf"))
    assert any(f.rule_id == "ICP003" for f in second.findings), (
        "the edit introduced a dead store; ICP003 should flag it"
    )

    # --- 3. the soundness sanitizer ------------------------------------
    print("\n== sanitizer ==")
    result = analyze(parse_program(SOURCE))
    unsound = sanitize_result(result)
    print(f"unsound constant claims: {len(unsound)}")
    assert not unsound, "the pipeline's claims must survive execution"

    # Severity floors and rule selections compose with every entry point.
    warnings_only = check_source(
        SOURCE, path="tour.mf", options=DiagOptions(severity_floor="warning")
    )
    print(f"\nwith --severity-floor warning: {len(warnings_only.findings)} finding(s)")


if __name__ == "__main__":
    main()
