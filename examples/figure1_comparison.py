#!/usr/bin/env python
"""Reproduce the paper's Figure 1 precision comparison.

Runs all six interprocedural constant propagation methods on the Figure 1
example and prints which formal parameters each method proves constant —
reproducing the table in the paper's introduction:

    FLOW-SENSITIVE    f1, f2, f3, f4, f5
    FLOW-INSENSITIVE  f1, f3, f4
    LITERAL           f1, f3
    INTRA             f1, f3, f5
    PASS-THROUGH      f1, f3, f4, f5
    POLYNOMIAL        f1, f3, f4, f5

Run:  python examples/figure1_comparison.py
"""

from repro.bench.programs import figure1_program, figure1_source
from repro.core.driver import analyze_program
from repro.core.jump_functions import JumpFunctionKind, jump_function_icp

PAPER = {
    "FLOW-SENSITIVE": {"f1", "f2", "f3", "f4", "f5"},
    "FLOW-INSENSITIVE": {"f1", "f3", "f4"},
    "LITERAL": {"f1", "f3"},
    "INTRA": {"f1", "f3", "f5"},
    "PASS-THROUGH": {"f1", "f3", "f4", "f5"},
    "POLYNOMIAL": {"f1", "f3", "f4", "f5"},
}


def main() -> None:
    print(figure1_source())
    program = figure1_program()
    result = analyze_program(program)

    found = {
        "FLOW-SENSITIVE": {f for _, f in result.fs.constant_formals()},
        "FLOW-INSENSITIVE": {f for _, f in result.fi.constant_formals()},
    }
    kind_names = {
        JumpFunctionKind.LITERAL: "LITERAL",
        JumpFunctionKind.INTRA: "INTRA",
        JumpFunctionKind.PASS_THROUGH: "PASS-THROUGH",
        JumpFunctionKind.POLYNOMIAL: "POLYNOMIAL",
    }
    for kind, label in kind_names.items():
        solution = jump_function_icp(
            program, result.symbols, result.pcg, kind, result.modref.callsite_mod,
            assign_aliases=result.aliases.partners,
        )
        found[label] = {f for _, f in solution.constant_formals()}

    print(f"{'METHOD':<18} {'CONSTANT FORMALS':<24} matches paper?")
    for method, expected in PAPER.items():
        formals = ", ".join(sorted(found[method]))
        ok = "yes" if found[method] == expected else f"NO (expected {sorted(expected)})"
        print(f"{method:<18} {formals:<24} {ok}")
    assert all(found[m] == e for m, e in PAPER.items())


if __name__ == "__main__":
    main()
