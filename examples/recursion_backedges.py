#!/usr/bin/env python
"""Back edges and the flow-insensitive fallback (paper Section 3.2).

The paper's method performs exactly one flow-sensitive analysis per
procedure; recursion is handled by substituting the flow-insensitive
solution on PCG back edges.  This example builds recursive programs, shows
the back-edge ratio ("the measure of the flow-insensitiveness of our
solution"), and demonstrates that constants carried unchanged through the
recursion survive while the varying induction parameter is correctly lowered.

Run:  python examples/recursion_backedges.py
"""

from repro.bench.programs import mutual_recursion_program, recursion_program
from repro.core.driver import analyze_program
from repro.interp import Recorder, run_program
from repro.lang.parser import parse_program


def report(title: str, program) -> None:
    result = analyze_program(program)
    print(f"== {title} ==")
    print(f"  PCG edges: {len(result.pcg.edges)}, "
          f"back edges: {len(result.pcg.back_edges)}, "
          f"fallback ratio: {result.fs.fallback_ratio(result.pcg):.2f}")
    print(f"  FI constant formals: {result.fi.constant_formals()}")
    print(f"  FS constant formals: {result.fs.constant_formals()}")

    # Check every claim against observed execution values.
    recorder = Recorder()
    run_program(program, recorder=recorder)
    for (proc, formal) in result.fs.constant_formals():
        claimed = result.fs.entry_formal(proc, formal).const_value
        observed = recorder.entry_values.get((proc, formal))
        print(f"  claim {proc}.{formal} == {claimed}; observed: {observed}")
    print()


DEEP_CYCLE = """\
# A three-procedure cycle: `cfg` rides through unchanged, `i` varies.
proc main() {
    call stage_a(6, 40);
}

proc stage_a(i, cfg) {
    if (i > 0) { call stage_b(i - 1, cfg); }
}

proc stage_b(i, cfg) {
    if (i > 0) { call stage_c(i - 1, cfg); }
}

proc stage_c(i, cfg) {
    print(cfg + i);
    if (i > 0) { call stage_a(i - 1, cfg); }
}
"""


def main() -> None:
    report("self recursion", recursion_program())
    report("mutual recursion", mutual_recursion_program())
    report("three-procedure cycle", parse_program(DEEP_CYCLE))


if __name__ == "__main__":
    main()
