#!/usr/bin/env python
"""Analyze genuine FORTRAN-style source, as the paper's prototype did.

The 1995 prototype consumed Fortran; this example feeds an F77-subset
program (COMMON, BLOCK DATA, SUBROUTINE, DO loops, .NE./.GT. operators)
through the FORTRAN front end and the full pipeline, reproducing the
Figure 1 precision result and optimizing a small numerical kernel.

Run:  python examples/fortran_pipeline.py
"""

from repro.core import ICPConfig, analyze_program, optimize_program
from repro.interp import run_program
from repro.lang.fortran import fortran_to_minif, parse_fortran
from repro.lang.pretty import pretty_program

KERNEL_F77 = """
C     A small relaxation kernel with configuration in COMMON.
      COMMON OMEGA, DEBUG
      BLOCK DATA
        DATA OMEGA /1.5/
        DATA DEBUG /0/
      END

      PROGRAM DRIVER
        CALL SWEEP(4, 10)
      END

      SUBROUTINE SWEEP(NSTEPS, N)
        V = 100.0
        DO I = 1, NSTEPS
          CALL RELAX(V, N)
        ENDDO
        PRINT *, V
      END

      SUBROUTINE RELAX(V, N)
        IF (DEBUG .NE. 0) THEN
          CALL TRACE(V)
        ENDIF
        V = V - OMEGA * (V / N)
      END

      SUBROUTINE TRACE(X)
        PRINT *, X
      END
"""


def main() -> None:
    program = parse_fortran(KERNEL_F77)

    print("== translated to MiniF ==")
    print(fortran_to_minif(KERNEL_F77))

    result = analyze_program(program, ICPConfig())
    print("== analysis ==")
    print(result.summary())
    # OMEGA and DEBUG are BLOCK DATA constants, never modified.
    assert result.fi.global_constants == {"omega": 1.5, "debug": 0}
    # NSTEPS/N are constant at every call site; V varies through the loop.
    assert result.fs.entry_formal("sweep", "nsteps").is_const
    assert result.fs.entry_formal("relax", "n").is_const
    assert not result.fs.entry_formal("relax", "v").is_const

    print("\n== optimized ==")
    optimized = optimize_program(program)
    print(pretty_program(optimized.program))
    # DEBUG == 0 kills the trace path; the TRACE subroutine disappears.
    assert "trace" not in pretty_program(optimized.program)

    before = run_program(program).outputs
    after = run_program(optimized.program).outputs
    assert before == after
    print(f"behaviour preserved: output {before}")


if __name__ == "__main__":
    main()
