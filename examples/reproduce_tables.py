#!/usr/bin/env python
"""Regenerate every table of the paper's evaluation section.

Runs the full pipeline over the synthetic SPEC-analog suite and prints
Tables 1-5 with the paper's reported numbers side by side, plus the Section 4
compile-time comparison.  Workloads are synthetic (see DESIGN.md), so
absolute numbers differ; the qualitative relations the paper's prose states
are checked by the assertions in benchmarks/.

Run:  python examples/reproduce_tables.py
"""

from repro.bench import tables


def main() -> None:
    print(tables.format_table1(tables.table1_rows(), "Table 1: call-site constant candidates"))
    print()
    print(tables.format_table2(tables.table2_rows(), "Table 2: interprocedurally propagated constants"))
    print()
    print(tables.format_table1(tables.table3_rows(), "Table 3: candidates, GT subset (floats off)"))
    print()
    print(tables.format_table2(tables.table4_rows(), "Table 4: propagated, GT subset (floats off)"))
    print()
    print(tables.format_table5(tables.table5_rows()))
    print()

    rows = tables.timing_rows()
    print("Section 4 timing: FS analysis-phase increase over FI (paper: ~1.5x)")
    for row in rows:
        print(
            f"  {row.name:<16} base {row.base_seconds * 1e3:7.2f} ms   "
            f"FI {row.fi_seconds * 1e3:6.2f} ms   FS {row.fs_seconds * 1e3:6.2f} ms   "
            f"increase {row.analysis_increase:.2f}x"
        )
    mean = sum(r.analysis_increase for r in rows) / len(rows)
    print(f"  mean increase: {mean:.2f}x")


if __name__ == "__main__":
    main()
