#!/usr/bin/env python
"""Quickstart: analyze a MiniF program with the paper's pipeline.

Parses a small program, runs the Figure 2 compilation model (call graph,
aliasing, MOD/REF, flow-insensitive + flow-sensitive ICP), prints what each
method discovered, and shows the constant-substituted program.

Run:  python examples/quickstart.py
"""

from repro import ICPConfig, analyze_program
from repro.interp import run_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program

SOURCE = """\
global scale;

init {
    scale = 10;
}

proc main() {
    call compute(3, 4);
    call compute(3, 9);
}

proc compute(base, n) {
    # `base` is 3 at every call site; `n` varies.
    if (base == 3) {
        k = 2;
    } else {
        k = 7;
    }
    call emit(base * k, n);
}

proc emit(v, n) {
    print(v * scale + n);
}
"""


def main() -> None:
    program = parse_program(SOURCE)

    # --- analysis ------------------------------------------------------
    result = analyze_program(program, ICPConfig(), run_transform=True)
    print("== analysis summary ==")
    print(result.summary())

    print("\n== per-procedure entry constants (flow-sensitive) ==")
    for proc in result.pcg.nodes:
        env = result.fs.entry_env(proc, result.symbols[proc])
        constants = {var: v.const_value for var, v in env.items() if v.is_const}
        print(f"  {proc}: {constants}")

    # --- transformation -------------------------------------------------
    print("\n== transformed program ==")
    assert result.transform is not None
    print(pretty_program(result.transform.program))

    # --- the transformation preserved behaviour --------------------------
    before = run_program(program).outputs
    after = run_program(result.transform.program).outputs
    print(f"outputs before: {before}")
    print(f"outputs after:  {after}")
    assert before == after, "transformation must preserve observable behaviour"


if __name__ == "__main__":
    main()
