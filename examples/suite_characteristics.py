#!/usr/bin/env python
"""Structural characteristics of the synthetic benchmark suite.

The paper defers the interprocedural characteristics of its benchmarks to
companion studies ([7], [17]).  This example prints the same kind of
statistics for the synthetic analogs — procedure counts, call-site density,
argument classification (literal vs by-reference), call-graph depth — plus
the seven-method precision spectrum over the suite.

Run:  python examples/suite_characteristics.py
"""

from repro.bench.characteristics import characterize_suite, format_characteristics
from repro.bench.comparison import compare_suite, format_comparison


def main() -> None:
    print("== structural characteristics (cf. the paper's refs [7], [17]) ==")
    print(format_characteristics(characterize_suite()))
    print()
    print("== constant formals discovered, per method (Figure 1, suite-wide) ==")
    print(format_comparison(compare_suite()))


if __name__ == "__main__":
    main()
